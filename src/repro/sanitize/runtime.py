"""Runtime race / deadlock sanitizer for the threaded serving path.

The static side (:mod:`repro.analysis.concurrency`) proves lock
discipline over the call graph; this module watches the same discipline
*live*, Eraser-style, while the concurrent stress suite hammers the
threaded serving path.  Three cooperating pieces:

* :class:`SanLock` — an instrumented mutex.  While the sanitizer is
  armed it maintains a per-thread held-lock stack, a global
  lock-*order* graph (an edge ``A -> B`` whenever ``B`` is acquired
  with ``A`` held), and happens-before edges from each release to the
  next acquire of the same lock instance.  An acquisition that closes a
  cycle in the order graph is reported as a potential deadlock — with
  the stack of the current acquisition *and* the remembered stack of
  the reversed edge — without actually deadlocking the test.
* :class:`SanThread` — a ``threading.Thread`` that, while armed,
  carries the parent's vector clock into the child at ``start`` and
  merges the child's final clock back at ``join``, so fork/join
  patterns never look like races.
* The **lock-set tracker** — :func:`track_read` / :func:`track_write`
  hooks compiled into the hot shared structures (ISP session table,
  persistent-store page map, metrics instrument map, RPC connection
  list).  For every tracked field it remembers the last write and the
  last read per thread, each with the held lock-set and a vector-clock
  snapshot.  A pair of accesses — at least one a write, from different
  threads, not ordered by happens-before, with disjoint lock-sets — is
  a data race, reported with both stacks.  A per-variable candidate
  lock-set (classic Eraser ``C(v)``) is intersected across unordered
  accesses as well, so a protecting lock that quietly stops being held
  is caught even when the racy interleaving never materializes.

Everything is **zero-cost when disarmed**: instrumented sites guard
with ``if san.ACTIVE:`` (one module-attribute load and a branch, the
same pattern as :mod:`repro.faults.registry` and
:mod:`repro.obs.metrics`), and a disarmed :class:`SanLock` delegates
straight to the underlying :class:`threading.Lock`.
"""

from __future__ import annotations

import threading
import traceback
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import SanitizerError

#: Fast-path flag read by instrumented call sites (``if san.ACTIVE:``).
#: True exactly while :func:`arm` is in effect.
ACTIVE = False

#: Frames kept per captured stack (innermost last, sanitizer frames
#: trimmed).  Stacks are captured only while armed and only at
#: bookkeeping points, never on the disarmed path.
STACK_DEPTH = 12

#: One internal mutex guards every sanitizer structure.  It is a plain
#: ``threading.Lock`` (never a SanLock: the sanitizer does not watch
#: itself) and is always the innermost lock — no sanitizer code calls
#: out while holding it — so it can introduce no ordering cycle.
_state_lock = threading.Lock()


def _capture_stack() -> Tuple[str, ...]:
    """A compact, trimmed stack for reports (outermost first)."""
    frames = traceback.extract_stack()
    trimmed = [
        f"{frame.filename.rsplit('/', 1)[-1]}:{frame.lineno} "
        f"in {frame.name}"
        for frame in frames
        if "repro/sanitize/runtime" not in frame.filename.replace("\\", "/")
    ]
    return tuple(trimmed[-STACK_DEPTH:])


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------


class SanitizerReport:
    """One race or lock-order finding, with every involved stack."""

    KIND_RACE = "data-race"
    KIND_LOCK_ORDER = "lock-order-inversion"

    def __init__(self, kind: str, subject: str, detail: str,
                 stacks: List[Tuple[str, Tuple[str, ...]]]) -> None:
        self.kind = kind
        #: What the report is about: a ``Class.field`` for races, a
        #: ``A -> B -> A`` cycle rendering for inversions.
        self.subject = subject
        self.detail = detail
        #: ``(label, frames)`` pairs — both sides of the conflict.
        self.stacks = stacks

    def render(self) -> str:
        lines = [f"[{self.kind}] {self.subject}: {self.detail}"]
        for label, frames in self.stacks:
            lines.append(f"  {label}:")
            lines.extend(f"    {frame}" for frame in frames)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SanitizerReport({self.kind!r}, {self.subject!r})"


_reports: List[SanitizerReport] = []
#: Dedup keys so one hot site does not flood the report list.
_reported_keys: Set[Tuple[str, str]] = set()


def _report(kind: str, subject: str, detail: str,
            stacks: List[Tuple[str, Tuple[str, ...]]]) -> None:
    key = (kind, subject)
    with _state_lock:
        if key in _reported_keys:
            return
        _reported_keys.add(key)
        _reports.append(SanitizerReport(kind, subject, detail, stacks))


def reports() -> List[SanitizerReport]:
    """Snapshot of every report accumulated since the last reset."""
    with _state_lock:
        return list(_reports)


def assert_clean() -> None:
    """Raise :class:`SanitizerError` rendering every report, if any."""
    pending = reports()
    if pending:
        rendered = "\n\n".join(r.render() for r in pending)
        raise SanitizerError(
            f"{len(pending)} sanitizer report(s):\n{rendered}"
        )


# ----------------------------------------------------------------------
# Vector clocks and per-thread state
# ----------------------------------------------------------------------

Clock = Dict[int, int]


class _ThreadState:
    """Sanitizer view of one thread: vector clock + held SanLocks."""

    __slots__ = ("tid", "clock", "held")

    def __init__(self, tid: int, clock: Optional[Clock] = None) -> None:
        self.tid = tid
        self.clock: Clock = dict(clock) if clock else {}
        self.clock.setdefault(tid, 1)
        #: Acquisition-ordered stack of (SanLock, acquire-stack).
        self.held: List[Tuple["SanLock", Tuple[str, ...]]] = []


_threads: Dict[int, _ThreadState] = {}


def _state(tid: Optional[int] = None) -> _ThreadState:
    """The calling thread's state (created on first contact).

    Callers hold :data:`_state_lock`.
    """
    if tid is None:
        tid = threading.get_ident()
    state = _threads.get(tid)
    if state is None:
        state = _ThreadState(tid)
        _threads[tid] = state
    return state


def _merge_into(target: Clock, source: Clock) -> None:
    for tid, tick in source.items():
        if target.get(tid, 0) < tick:
            target[tid] = tick


def _happens_before(event: Tuple[int, int], clock: Clock) -> bool:
    """Did the recorded event (tid, tick) happen-before ``clock``?"""
    tid, tick = event
    return clock.get(tid, 0) >= tick


def _stamp(state: _ThreadState) -> Tuple[int, int]:
    """Record an event on ``state``'s timeline; returns its (tid, tick)."""
    tick = state.clock.get(state.tid, 0) + 1
    state.clock[state.tid] = tick
    return (state.tid, tick)


# ----------------------------------------------------------------------
# SanLock: the instrumented mutex
# ----------------------------------------------------------------------

#: Lock-order graph over lock *names*: edges[a] = {b: witness_stack}
#: meaning b was acquired while a was held.  Name-level (not instance-
#: level) so two store instances locked in opposite orders still count.
_order_edges: Dict[str, Dict[str, Tuple[str, ...]]] = {}


def _path_exists(src: str, dst: str) -> bool:
    """DFS reachability in the order graph (callers hold _state_lock)."""
    stack, seen = [src], set()
    while stack:
        node = stack.pop()
        if node == dst:
            return True
        if node in seen:
            continue
        seen.add(node)
        stack.extend(_order_edges.get(node, ()))
    return False


def _witness_path(src: str, dst: str) -> List[str]:
    """One concrete src -> ... -> dst path (callers hold _state_lock)."""
    stack: List[Tuple[str, List[str]]] = [(src, [src])]
    seen: Set[str] = set()
    while stack:
        node, path = stack.pop()
        if node == dst:
            return path
        if node in seen:
            continue
        seen.add(node)
        for succ in _order_edges.get(node, ()):
            stack.append((succ, path + [succ]))
    return [src, dst]  # pragma: no cover - only on racing graph edits


class SanLock:
    """A mutex that feeds the sanitizer while armed.

    Disarmed, every entry point delegates to the wrapped
    ``threading.Lock`` / ``RLock`` after one :data:`ACTIVE` check.  The
    ``name`` identifies the lock *class* in reports and in the order
    graph (e.g. ``"isp.sessions"``); instances of the same name share
    ordering constraints, exactly like the static rule's lock ids.
    """

    __slots__ = ("name", "_inner", "_reentrant", "_release_clock")

    def __init__(self, name: str, reentrant: bool = False) -> None:
        self.name = name
        self._reentrant = reentrant
        self._inner = threading.RLock() if reentrant else threading.Lock()
        #: Vector clock at the last release (happens-before edge
        #: release -> next acquire of this same instance).
        self._release_clock: Optional[Clock] = None

    def raw(self) -> Any:
        """The wrapped stdlib lock (benchmark baselines swap this in)."""
        return self._inner

    # -- armed bookkeeping --------------------------------------------

    def _note_acquired(self) -> None:
        stack = _capture_stack()
        with _state_lock:
            state = _state()
            held_names = [lock.name for lock, _ in state.held]
            if not (self._reentrant and self.name in held_names):
                for prior, prior_stack in state.held:
                    if prior.name == self.name:
                        continue
                    self._note_order_edge(
                        prior.name, prior_stack, stack
                    )
            state.held.append((self, stack))
            if self._release_clock is not None:
                _merge_into(state.clock, self._release_clock)

    def _note_order_edge(
        self,
        held_name: str,
        held_stack: Tuple[str, ...],
        acquire_stack: Tuple[str, ...],
    ) -> None:
        """Insert edge held_name -> self.name; report a closed cycle.

        Callers hold :data:`_state_lock`.
        """
        successors = _order_edges.setdefault(held_name, {})
        is_new = self.name not in successors
        if is_new:
            successors[self.name] = acquire_stack
        if is_new and _path_exists(self.name, held_name):
            cycle = _witness_path(self.name, held_name) + [self.name]
            reverse_witness = _order_edges.get(self.name, {}).get(
                cycle[1], ()
            )
            report = SanitizerReport(
                SanitizerReport.KIND_LOCK_ORDER,
                " -> ".join(cycle),
                f"lock {self.name!r} acquired while {held_name!r} is "
                "held, but the opposite order also occurs",
                [
                    (f"acquiring {self.name!r} with {held_name!r} held",
                     acquire_stack),
                    (f"{held_name!r} acquisition", held_stack),
                    (f"earlier {cycle[1]!r} after {self.name!r}",
                     tuple(reverse_witness)),
                ],
            )
            key = (report.kind, report.subject)
            if key not in _reported_keys:
                _reported_keys.add(key)
                _reports.append(report)

    def _note_released(self) -> None:
        with _state_lock:
            state = _state()
            for index in range(len(state.held) - 1, -1, -1):
                if state.held[index][0] is self:
                    del state.held[index]
                    break
            still_held = any(
                lock is self for lock, _ in state.held
            )
            if not still_held:
                _stamp(state)
                self._release_clock = dict(state.clock)

    # -- lock protocol -------------------------------------------------

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired and ACTIVE:
            self._note_acquired()
        return acquired

    def release(self) -> None:
        if ACTIVE:
            self._note_released()
        self._inner.release()

    def __enter__(self) -> "SanLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SanLock({self.name!r})"


def held_locks() -> List[str]:
    """Names of SanLocks the calling thread holds (armed only)."""
    with _state_lock:
        return [lock.name for lock, _ in _state().held]


# ----------------------------------------------------------------------
# SanThread: fork/join happens-before
# ----------------------------------------------------------------------


class SanThread(threading.Thread):
    """A thread whose fork and join carry vector-clock edges.

    Disarmed it is exactly ``threading.Thread``.  Armed, the child
    starts with (a copy of) the parent's clock, so everything the
    parent did before ``start()`` happens-before the child; ``join()``
    merges the child's final clock back, so everything the child did
    happens-before the parent's continuation.
    """

    _san_start_clock: Optional[Clock] = None
    _san_final_clock: Optional[Clock] = None

    def start(self) -> None:
        if ACTIVE:
            with _state_lock:
                parent = _state()
                _stamp(parent)
                self._san_start_clock = dict(parent.clock)
        super().start()

    def run(self) -> None:
        if ACTIVE and self._san_start_clock is not None:
            with _state_lock:
                state = _state()
                _merge_into(state.clock, self._san_start_clock)
        try:
            super().run()
        finally:
            if ACTIVE:
                with _state_lock:
                    state = _state()
                    _stamp(state)
                    self._san_final_clock = dict(state.clock)

    def join(self, timeout: Optional[float] = None) -> None:
        super().join(timeout)
        if ACTIVE and not self.is_alive():
            final = self._san_final_clock
            if final is not None:
                with _state_lock:
                    _merge_into(_state().clock, final)


# ----------------------------------------------------------------------
# The Eraser-style lock-set tracker
# ----------------------------------------------------------------------


class _Access:
    """One remembered access to a tracked variable."""

    __slots__ = ("event", "tid", "held", "stack", "is_write")

    def __init__(self, event: Tuple[int, int], tid: int,
                 held: Set[str], stack: Tuple[str, ...],
                 is_write: bool) -> None:
        self.event = event
        self.tid = tid
        self.held = held
        self.stack = stack
        self.is_write = is_write


class _VarState:
    """Tracker state for one (object, field) pair."""

    __slots__ = ("label", "write_guarded", "candidate", "last_write",
                 "last_reads", "guard")

    def __init__(self, label: str, write_guarded: bool,
                 guard: Optional[str]) -> None:
        self.label = label
        #: True for fields whose reads are deliberately lock-free
        #: (guarded-by ``writes`` mode): only write/write pairs race.
        self.write_guarded = write_guarded
        #: Classic Eraser C(v): None until the second thread shows up.
        self.candidate: Optional[Set[str]] = None
        self.last_write: Optional[_Access] = None
        #: Most recent read per thread id.
        self.last_reads: Dict[int, _Access] = {}
        #: Declared guarding lock name, for report detail only.
        self.guard = guard


_vars: Dict[Tuple[int, str], _VarState] = {}


def track(obj: Any, field: str, *, guard: Optional[str] = None,
          writes_only: bool = False) -> None:
    """Register ``obj.field`` as a tracked shared variable.

    Optional — :func:`track_read` / :func:`track_write` auto-register
    on first contact — but declaring up front attaches the guarding
    lock's name to reports and marks ``writes_only`` fields (reads are
    lock-free by design; only write/write pairs are raceable).
    """
    if not ACTIVE:
        return
    with _state_lock:
        _var_state(obj, field, writes_only, guard)


def _var_state(obj: Any, field: str, write_guarded: bool = False,
               guard: Optional[str] = None) -> _VarState:
    key = (id(obj), field)
    var = _vars.get(key)
    if var is None:
        label = f"{type(obj).__name__}.{field}"
        var = _VarState(label, write_guarded, guard)
        _vars[key] = var
    return var


def _conflicts(var: _VarState, access: _Access) -> List[_Access]:
    """Prior accesses that can race with ``access``."""
    prior: List[_Access] = []
    if access.is_write:
        if var.last_write is not None:
            prior.append(var.last_write)
        if not var.write_guarded:
            prior.extend(var.last_reads.values())
    elif not var.write_guarded and var.last_write is not None:
        prior.append(var.last_write)
    return [
        p for p in prior
        if p.tid != access.tid
    ]


def _note_access(obj: Any, field: str, is_write: bool) -> None:
    stack = _capture_stack()
    with _state_lock:
        state = _state()
        var = _var_state(obj, field)
        held = {lock.name for lock, _ in state.held}
        event = _stamp(state)
        access = _Access(event, state.tid, held, stack, is_write)
        for prior in _conflicts(var, access):
            if _happens_before(prior.event, state.clock):
                continue
            # Unordered conflicting pair: Eraser refinement first ...
            if var.candidate is None:
                var.candidate = set(prior.held)
            var.candidate &= held
            # ... then the pairwise verdict: no common lock = race.
            if prior.held & held:
                continue
            kinds = (
                f"{'write' if prior.is_write else 'read'}/"
                f"{'write' if is_write else 'read'}"
            )
            report = SanitizerReport(
                SanitizerReport.KIND_RACE,
                var.label,
                f"unsynchronized {kinds} pair"
                + (f" (declared guarded-by {var.guard!r})"
                   if var.guard else "")
                + f"; locks held: {sorted(prior.held) or '[]'} vs "
                  f"{sorted(held) or '[]'}",
                [
                    ("previous access", prior.stack),
                    ("current access", stack),
                ],
            )
            key = (report.kind, report.subject)
            if key not in _reported_keys:
                _reported_keys.add(key)
                _reports.append(report)
        if is_write:
            var.last_write = access
            var.last_reads.pop(state.tid, None)
        else:
            var.last_reads[state.tid] = access


def track_read(obj: Any, field: str) -> None:
    """Record a read of a tracked field (armed callers only)."""
    if ACTIVE:
        _note_access(obj, field, is_write=False)


def track_write(obj: Any, field: str) -> None:
    """Record a write/mutation of a tracked field (armed callers only)."""
    if ACTIVE:
        _note_access(obj, field, is_write=True)


def candidate_lockset(obj: Any, field: str) -> Optional[Set[str]]:
    """The Eraser candidate set C(v) for a tracked field (tests)."""
    with _state_lock:
        var = _vars.get((id(obj), field))
        return None if var is None else (
            None if var.candidate is None else set(var.candidate)
        )


# ----------------------------------------------------------------------
# Arming
# ----------------------------------------------------------------------


def arm() -> None:
    """Start watching.  State from a previous run is cleared."""
    global ACTIVE
    reset()
    with _state_lock:
        pass  # reset() already synchronized; flag flip is last
    ACTIVE = True


def disarm() -> None:
    """Stop watching.  Accumulated reports stay readable."""
    global ACTIVE
    ACTIVE = False


def reset() -> None:
    """Disarm and drop every report, clock, and tracked variable."""
    global ACTIVE
    ACTIVE = False
    with _state_lock:
        _reports.clear()
        _reported_keys.clear()
        _threads.clear()
        _vars.clear()
        _order_edges.clear()
