"""``repro.sanitize`` — the two-sided concurrency checker.

The ISP serves many clients concurrently while ``sync_update`` ingests
new blocks (the paper's Fig. 13b measures exactly this interference),
so concurrency correctness is a soundness property, not a performance
nicety.  Two sides watch it:

* **static** — :mod:`repro.analysis.concurrency` builds a module-level
  call graph with per-function lock summaries and enforces the
  ``lock-order`` (no cycles in the interprocedural lock-acquisition
  graph) and ``guarded-by`` (annotated shared fields are only touched
  with their lock held) rules under ``python -m repro lint``;
* **runtime** — :mod:`repro.sanitize.runtime` provides the
  :class:`SanLock` instrumented mutex, the :class:`SanThread`
  fork/join-aware thread, and an Eraser-style lock-set tracker with
  vector-clock happens-before, armed by the concurrent stress suite
  (``python -m repro sanitize``).

Instrumented production sites import the module façade and guard with
``if san.ACTIVE:`` so the disarmed cost is one attribute load.
"""

from repro.sanitize.runtime import (
    ACTIVE,
    SanitizerReport,
    SanLock,
    SanThread,
    arm,
    assert_clean,
    disarm,
    reports,
    reset,
    track,
    track_read,
    track_write,
)

__all__ = [
    "ACTIVE",
    "SanLock",
    "SanThread",
    "SanitizerReport",
    "arm",
    "assert_clean",
    "disarm",
    "reports",
    "reset",
    "track",
    "track_read",
    "track_write",
]
