"""DCert certificate issuer and validator.

A :class:`DCertIssuer` runs inside a simulated SGX enclave and certifies
blocks of exactly one source chain.  Certification is *recursive*: block
``i`` is certified only after validating (a) block ``i``'s consensus
validity and body integrity, (b) its hash link to block ``i-1``, and
(c) block ``i-1``'s certificate.  A certificate therefore attests that a
valid state-transition history exists back to genesis, which is what lets
lightweight clients verify the chain tip in constant time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.chain.block import GENESIS_PREV, Block, BlockHeader
from repro.chain.consensus import SimulatedPoW, check_header
from repro.crypto.hashing import Digest
from repro.crypto.signature import PublicKey, Signature, verify
from repro.errors import CertificateError, ChainError
from repro.sgx.enclave import Enclave


@dataclass(frozen=True)
class DCertCertificate:
    """Certificate for one block: ``C_blk`` in the paper."""

    chain_id: str
    height: int
    header_digest: Digest
    signature: Signature

    def message(self) -> bytes:
        return (
            b"dcert|"
            + self.chain_id.encode("utf-8")
            + self.height.to_bytes(8, "big")
            + self.header_digest
        )


class DCertIssuer:
    """The DCert CI for one source chain."""

    def __init__(
        self,
        chain_id: str,
        pow_params: Optional[SimulatedPoW] = None,
        platform_seed: bytes = b"platform-0",
    ) -> None:
        self.chain_id = chain_id
        self.pow_params = pow_params if pow_params is not None else SimulatedPoW()
        self.enclave = Enclave(
            code_identity=b"dcert-ci|" + chain_id.encode("utf-8"),
            platform_seed=platform_seed,
        )

    @property
    def public_key(self) -> PublicKey:
        """``pk_DCert``: the verification key for this CI's certificates."""
        return self.enclave.public_key

    def certify(
        self,
        prev_block: Optional[Block],
        prev_cert: Optional[DCertCertificate],
        block: Block,
    ) -> DCertCertificate:
        """Certify ``block``; the paper's ``DCert.certify``.

        For the genesis block, ``prev_block`` and ``prev_cert`` are None.
        Raises :class:`~repro.errors.CertificateError` or
        :class:`~repro.errors.ChainError` when any recursive check fails.
        """
        header = block.header
        check_header(header, self.pow_params, self.chain_id)
        if not block.verify_body():
            raise ChainError("block body does not match its tx root")
        if header.height == 0:
            if header.prev_digest != GENESIS_PREV:
                raise ChainError("genesis block has a non-genesis parent")
        else:
            if prev_block is None or prev_cert is None:
                raise CertificateError(
                    "non-genesis certification requires the previous "
                    "block and certificate"
                )
            if prev_block.header.height != header.height - 1:
                raise ChainError("previous block height mismatch")
            if header.prev_digest != prev_block.header.digest():
                raise ChainError("block does not link to previous block")
            dcert_valid(prev_cert, prev_block.header, self.public_key)
        signature = self.enclave.sign_inside(
            b"dcert|"
            + self.chain_id.encode("utf-8")
            + header.height.to_bytes(8, "big")
            + header.digest()
        )
        return DCertCertificate(
            chain_id=self.chain_id,
            height=header.height,
            header_digest=header.digest(),
            signature=signature,
        )


def dcert_valid(
    cert: DCertCertificate,
    header: BlockHeader,
    public_key: PublicKey,
) -> None:
    """The paper's ``DCert.valid``: raise unless ``cert`` certifies
    ``header`` under ``public_key``."""
    if cert.chain_id != header.chain_id:
        raise CertificateError("certificate is for a different chain")
    if cert.height != header.height:
        raise CertificateError("certificate height mismatch")
    if cert.header_digest != header.digest():
        raise CertificateError("certificate digest mismatch")
    if not verify(public_key, cert.message(), cert.signature):
        raise CertificateError("certificate signature invalid")
