"""DCert: decentralized certification of source-chain blocks.

Implements the DCert framework the paper builds on (Ji et al.,
Middleware 2022): an SGX-backed certificate issuer recursively certifies
each block by validating the new header, the state transition from the
previous block, and the previous block's certificate.  Lightweight
verifiers then need only the latest header and certificate.

API mirrors the paper's:

* ``DCert.certify(blk_prev, cert_prev, blk_new, sk) -> cert_new``
  — :meth:`repro.dcert.certifier.DCertIssuer.certify`
* ``DCert.valid(cert, hdr, pk) -> {0, 1}``
  — :func:`repro.dcert.certifier.dcert_valid`
"""

from repro.dcert.certifier import DCertCertificate, DCertIssuer, dcert_valid

__all__ = ["DCertCertificate", "DCertIssuer", "dcert_valid"]
