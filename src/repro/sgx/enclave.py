"""The simulated SGX enclave and its OCall boundary.

An :class:`Enclave` seals a signing keypair derived from its measurement
(the identity of the code it runs) and a platform seed.  Code "inside" the
enclave accesses the outside world only through :meth:`Enclave.ocall`,
which dispatches to handlers registered by the untrusted host.  Every
OCall is counted and charged through an :class:`OCallCostModel`; the
accumulated simulated overhead is what reproduces the paper's 3.2-10.4x
SGX slowdown in Figure 8 and its amortization by the P_r/P_w page
collections.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict

from repro.crypto.hashing import Digest, hash_bytes
from repro.crypto.signature import KeyPair, PublicKey, Signature, sign
from repro.errors import EnclaveError
from repro.obs import metrics as obs


@dataclass
class OCallCostModel:
    """Simulated cost charged per enclave boundary crossing.

    SGX literature puts a raw OCall at roughly 10 microseconds plus a
    per-byte marshalling cost.  This simulator's database engine is pure
    Python — several hundred times slower than the paper's native Rust —
    so the boundary cost is scaled by the same factor to preserve the
    *ratio* between computation and enclave transitions (which is what
    Figure 8 measures).  With these defaults a single-block maintenance
    run lands near the paper's ~10x SGX slowdown, decaying toward ~3x as
    batching amortizes OCalls.
    """

    per_call_s: float = 4.5e-3
    per_byte_s: float = 1.5e-7

    def cost(self, payload_bytes: int) -> float:
        return self.per_call_s + self.per_byte_s * payload_bytes


@dataclass
class OCallStats:
    """Counters accumulated across a run of enclave code."""

    calls: int = 0
    bytes_crossed: int = 0
    simulated_overhead_s: float = 0.0
    by_name: Dict[str, int] = field(default_factory=dict)

    def reset(self) -> None:
        self.calls = 0
        self.bytes_crossed = 0
        self.simulated_overhead_s = 0.0
        self.by_name.clear()


class Enclave:
    """An isolation container with sealed keys and a metered OCall boundary.

    The host registers OCall handlers (functions reaching untrusted
    storage); enclave code calls :meth:`ocall` by name.  The sealed
    private key never leaves the object — only :attr:`public_key` and
    :meth:`sign_inside` are exposed, mirroring how the V2FS CI signs
    certificates with the SGX secret key (Algorithm 3, line 7).
    """

    def __init__(
        self,
        code_identity: bytes,
        platform_seed: bytes = b"platform-0",
        cost_model: OCallCostModel | None = None,
    ) -> None:
        self.measurement: Digest = hash_bytes(b"mrenclave|" + code_identity)
        self._sealed_keys = KeyPair.generate(
            b"sealed|" + self.measurement + platform_seed
        )
        self._handlers: Dict[str, Callable[..., Any]] = {}
        self.cost_model = cost_model if cost_model is not None else OCallCostModel()
        self.stats = OCallStats()

    @property
    def public_key(self) -> PublicKey:
        return self._sealed_keys.public

    def sign_inside(self, message: bytes) -> Signature:
        """Sign ``message`` with the sealed key (never exported)."""
        return sign(self._sealed_keys, message)

    def register_ocall(
        self, name: str, handler: Callable[..., Any]
    ) -> None:
        """Host-side: register the untrusted handler for OCall ``name``."""
        self._handlers[name] = handler

    def ocall(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Enclave-side: cross the boundary into an untrusted handler."""
        handler = self._handlers.get(name)
        if handler is None:
            raise EnclaveError(f"no OCall handler registered for {name!r}")
        result = handler(*args, **kwargs)
        payload = _payload_size(args) + _payload_size((result,))
        cost = self.cost_model.cost(payload)
        self.stats.calls += 1
        self.stats.bytes_crossed += payload
        self.stats.simulated_overhead_s += cost
        self.stats.by_name[name] = self.stats.by_name.get(name, 0) + 1
        if obs.ACTIVE:
            obs.inc("sgx.ocall")
            obs.add("sgx.ocall.bytes", payload)
            obs.add("sgx.ocall.overhead_s", cost)
        return result


def _payload_size(values: Any) -> int:
    """Rough byte size of data marshalled across the boundary."""
    total = 0
    for value in values:
        if isinstance(value, (bytes, bytearray)):
            total += len(value)
        elif isinstance(value, str):
            total += len(value.encode("utf-8"))
        elif isinstance(value, (list, tuple)):
            total += _payload_size(value)
        elif isinstance(value, dict):
            total += _payload_size(value.keys())
            total += _payload_size(value.values())
        elif value is not None:
            total += 8
    return total
