"""Simulated remote attestation.

A stand-in for Intel's quoting infrastructure: the
:class:`AttestationService` holds a root keypair and issues
:class:`AttestationReport` quotes binding an enclave's measurement to its
sealed public key.  Relying parties (query clients, the ISP) verify the
quote against the service's root public key before trusting certificates
signed by that enclave — this is how ``pk_sgx`` is distributed in the
paper without clients ever contacting the CI directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import Digest
from repro.crypto.signature import (
    KeyPair,
    PublicKey,
    Signature,
    sign,
    verify,
)
from repro.errors import CertificateError
from repro.sgx.enclave import Enclave


@dataclass(frozen=True)
class AttestationReport:
    """A quote binding (measurement, enclave public key)."""

    measurement: Digest
    enclave_public_key: PublicKey
    signature: Signature

    def message(self) -> bytes:
        return (
            b"quote|"
            + self.measurement
            + self.enclave_public_key.to_bytes()
        )


class AttestationService:
    """Issues and verifies enclave quotes (the "Intel" of the simulation)."""

    def __init__(self, seed: bytes = b"attestation-root") -> None:
        self._keys = KeyPair.generate(seed)

    @property
    def root_public_key(self) -> PublicKey:
        return self._keys.public

    def quote(self, enclave: Enclave) -> AttestationReport:
        """Issue a report for an enclave running on this platform."""
        report = AttestationReport(
            measurement=enclave.measurement,
            enclave_public_key=enclave.public_key,
            signature=sign(
                self._keys,
                b"quote|"
                + enclave.measurement
                + enclave.public_key.to_bytes(),
            ),
        )
        return report

    @staticmethod
    # repro: taint-sanitizer
    def verify_report(
        report: AttestationReport,
        root_public_key: PublicKey,
        expected_measurement: Digest,
    ) -> PublicKey:
        """Verify a quote; return the attested enclave public key.

        Raises :class:`~repro.errors.CertificateError` if the quote
        signature is invalid or the measurement is not the expected code
        identity.
        """
        if report.measurement != expected_measurement:
            raise CertificateError("attested measurement mismatch")
        if not verify(root_public_key, report.message(), report.signature):
            raise CertificateError("attestation quote signature invalid")
        return report.enclave_public_key
