"""Simulated Intel SGX: enclaves, the OCall boundary, and attestation.

The paper runs the V2FS CI's database and ADS engines inside an SGX
enclave; crossing the enclave boundary (an *OCall*) is expensive, and the
page collections P_r/P_w exist precisely to amortize that cost (Fig. 8).

This package simulates the parts of SGX the system depends on:

* :class:`~repro.sgx.enclave.Enclave` — an isolation container holding
  sealed keys; outside code cannot read them, and enclave code reaches
  external state only through registered OCall handlers, each call being
  counted and charged through a calibrated cost model;
* :class:`~repro.sgx.attestation.AttestationService` — a stand-in for
  Intel's quoting infrastructure: it signs (measurement, enclave public
  key) quotes that relying parties verify against the service's root key.
"""

from repro.sgx.attestation import AttestationReport, AttestationService
from repro.sgx.enclave import Enclave, OCallCostModel, OCallStats

__all__ = [
    "AttestationReport",
    "AttestationService",
    "Enclave",
    "OCallCostModel",
    "OCallStats",
]
