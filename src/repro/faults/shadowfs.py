"""Shadow dirty-vs-durable filesystem for crash simulation.

:class:`ShadowFilesystem` is a drop-in
:class:`~repro.vfs.interface.VirtualFilesystem` that keeps **two**
images of every file:

* the **dirty** image — what the application has written (what ordinary
  reads observe), and
* the **durable** image — what has been explicitly made persistent via
  :meth:`~ShadowFile.sync` (the ``fsync`` of this model).

:meth:`ShadowFilesystem.crash` models power loss: the dirty image is
discarded and replaced by the durable one, except that — exactly like a
real disk losing power mid-write — each un-synced dirty *page* is
independently resolved by a seeded RNG into one of three outcomes:

* **persisted** — the page made it to disk despite the missing fsync;
* **lost** — the durable content survives unchanged;
* **torn** — a prefix of the new 4 KiB write landed, the rest is old
  (the torn-page case the pager's per-page checksum exists to detect).

The model is what lets :class:`SimulatedCrash` scenarios abandon
un-fsynced writes deterministically, and what the chaos harness reopens
stores against.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import FileNotFoundInStoreError
from repro.vfs.interface import PAGE_SIZE, VirtualFile, VirtualFilesystem

#: Crash outcomes for one un-synced dirty page.
_PERSISTED = "persisted"
_LOST = "lost"
_TORN = "torn"


class _ShadowEntry:
    """Dirty + durable buffers and the dirty-page set for one file."""

    __slots__ = ("dirty", "durable", "dirty_pages")

    def __init__(self) -> None:
        self.dirty = bytearray()
        self.durable = bytearray()
        self.dirty_pages: Set[int] = set()


class ShadowFile(VirtualFile):
    """Handle over the dirty image of one shadow file."""

    def __init__(self, fs: "ShadowFilesystem", path: str) -> None:
        super().__init__(path)
        self._fs = fs

    def size(self) -> int:
        self._check_open()
        return len(self._fs._entry(self.path).dirty)

    def read(self, count: int) -> bytes:
        self._check_open()
        buf = self._fs._entry(self.path).dirty
        data = bytes(buf[self.offset:self.offset + count])
        self.offset += len(data)
        return data

    def write(self, data: bytes) -> int:
        self._check_open()
        entry = self._fs._entry(self.path)
        end = self.offset + len(data)
        if end > len(entry.dirty):
            entry.dirty.extend(b"\x00" * (end - len(entry.dirty)))
        entry.dirty[self.offset:end] = data
        first = self.offset // PAGE_SIZE
        last = max(first, (end - 1) // PAGE_SIZE) if data else first
        entry.dirty_pages.update(range(first, last + 1))
        self.offset = end
        return len(data)

    def sync(self) -> None:
        """Publish this file's dirty image as durable (the model fsync)."""
        self._check_open()
        self._fs.sync_file(self.path)

    def close(self) -> None:
        self.closed = True


class ShadowFilesystem(VirtualFilesystem):
    """Dirty-vs-durable filesystem; survives :meth:`crash` like a disk."""

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self._files: Dict[str, _ShadowEntry] = {}
        self._rng = rng if rng is not None else random.Random()
        #: (path, page_id, outcome) log of the most recent crash, for
        #: assertions and chaos reporting.
        self.last_crash_outcomes: List[Tuple[str, int, str]] = []

    # -- VirtualFilesystem interface ------------------------------------

    def open(self, path: str, create: bool = False) -> ShadowFile:
        if path not in self._files:
            if not create:
                raise FileNotFoundInStoreError(path)
            self._files[path] = _ShadowEntry()
        return ShadowFile(self, path)

    def exists(self, path: str) -> bool:
        return path in self._files

    def remove(self, path: str) -> None:
        try:
            del self._files[path]
        except KeyError:
            raise FileNotFoundInStoreError(path) from None

    def list_files(self) -> List[str]:
        return sorted(self._files)

    def _entry(self, path: str) -> _ShadowEntry:
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFoundInStoreError(path) from None

    # -- durability model ------------------------------------------------

    def sync_file(self, path: str) -> None:
        entry = self._entry(path)
        entry.durable = bytearray(entry.dirty)
        entry.dirty_pages.clear()

    def sync_all(self) -> None:
        for path in self._files:
            self.sync_file(path)

    def dirty_pages(self, path: str) -> Set[int]:
        return set(self._entry(path).dirty_pages)

    def crash(self) -> List[Tuple[str, int, str]]:
        """Simulate power loss; returns the per-page crash outcomes.

        Every un-synced dirty page independently persists fully, is lost
        (durable content wins), or tears — the first ``k`` bytes of the
        new write land, ``k`` drawn from the RNG.  File *length* follows
        the furthest surviving write, mirroring how a crashed filesystem
        may have extended the file before losing data blocks.
        """
        outcomes: List[Tuple[str, int, str]] = []
        for path, entry in self._files.items():
            survivor = bytearray(entry.durable)
            dirty_len = len(entry.dirty)
            if dirty_len > len(survivor):
                survivor.extend(b"\x00" * (dirty_len - len(survivor)))
            for page_id in sorted(entry.dirty_pages):
                start = page_id * PAGE_SIZE
                end = min(start + PAGE_SIZE, dirty_len)
                if end <= start:
                    continue
                outcome = self._rng.choice((_PERSISTED, _LOST, _TORN))
                if outcome == _PERSISTED:
                    survivor[start:end] = entry.dirty[start:end]
                elif outcome == _TORN:
                    cut = start + self._rng.randrange(1, end - start) \
                        if end - start > 1 else start
                    survivor[start:cut] = entry.dirty[start:cut]
                outcomes.append((path, page_id, outcome))
            entry.dirty = survivor
            entry.durable = bytearray(survivor)
            entry.dirty_pages.clear()
        self.last_crash_outcomes = outcomes
        return outcomes
