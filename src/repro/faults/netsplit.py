"""Simulated network partitions (netsplits) for chaos testing.

A netsplit blackholes traffic between a *labelled* caller and a
``(host, port)`` endpoint: :class:`~repro.rpc.client.RemoteIsp` handles
carry a label (``"router"``, ``"client"``, ...) and consult this table
at the top of every call.  A severed pair fails with a typed
:class:`~repro.errors.RpcConnectionError` *before* touching the socket
— exactly how a partition looks from the application: the peer is up,
but unreachable from here.

Severing is directional and pairwise, so a schedule can model
asymmetric partitions (the router cannot reach shard 2, but the
replication log still can) — the failure mode that makes naive
failover dangerous.  V²FS soundness is unaffected either way: a
partition can only make answers slow or refused, never wrong.

Like :mod:`repro.faults.registry`, the table is process-global,
imperative, and zero-cost when empty: callers guard with
``if netsplit.ACTIVE:`` so production paths pay one module-attribute
read.  Not thread-synchronized by design — chaos harnesses mutate the
table from the driver thread between steps, and a racy read during a
transition just means the partition lands one call earlier or later,
which any real netsplit also does.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

#: True while at least one pair is severed (zero-cost guard flag).
ACTIVE = False

Endpoint = Tuple[str, int]

#: Severed (label, endpoint) pairs.  ``label`` "*" matches any caller.
_SEVERED: Set[Tuple[str, Endpoint]] = set()


def _refresh() -> None:
    global ACTIVE
    ACTIVE = bool(_SEVERED)


def sever(endpoint: Endpoint) -> None:
    """Blackhole ``endpoint`` for *every* caller (full partition)."""
    _SEVERED.add(("*", endpoint))
    _refresh()


def sever_pair(label: str, endpoint: Endpoint) -> None:
    """Blackhole traffic from callers labelled ``label`` to ``endpoint``.

    Other labels still reach the endpoint — an asymmetric partition.
    """
    _SEVERED.add((label, endpoint))
    _refresh()


def heal(endpoint: Optional[Endpoint] = None) -> None:
    """Heal partitions touching ``endpoint``, or all of them."""
    global _SEVERED
    if endpoint is None:
        _SEVERED = set()
    else:
        _SEVERED = {
            pair for pair in _SEVERED if pair[1] != endpoint
        }
    _refresh()


def is_blocked(label: str, endpoint: Endpoint) -> bool:
    """True when ``label`` cannot currently reach ``endpoint``."""
    return (
        ("*", endpoint) in _SEVERED or (label, endpoint) in _SEVERED
    )


def severed_count() -> int:
    return len(_SEVERED)


__all__ = [
    "ACTIVE",
    "Endpoint",
    "sever",
    "sever_pair",
    "heal",
    "is_blocked",
    "severed_count",
]
