"""Randomized chaos/recovery harness.

Three harnesses exercise the failure model end to end:

* :func:`run_system_chaos` — drives a full five-party
  :class:`~repro.core.system.V2FSSystem` whose ISP stores its ADS in a
  :class:`~repro.merkle.persistent_store.PersistentNodeStore`, under a
  seeded **fault schedule** (see :func:`parse_schedule`).  Each step
  randomly ingests a block, runs a verified query (in-process or over a
  live RPC server with wire faults armed), or kills and reopens the
  store.  Invariants checked throughout:

  - every query that *completes* verifies against ``pk_sgx`` (the
    client raises otherwise) and returns exactly the rows an in-memory
    **oracle** ISP — fed the same certified reports with faults
    suspended — returns;
  - after every crash + reopen, the recovered ISP serves precisely the
    last *fully published* certificate root: never a stale one, never a
    root whose nodes did not reach disk.

* :func:`run_concurrent_chaos` — the *concurrency* layer: N client
  threads query a live ISP over the real RPC loopback while an ingest
  thread publishes blocks through ``sync_update`` (the paper's
  Fig. 13b interference experiment as a correctness test, not a
  benchmark).  No failpoints are armed — the adversary here is the
  thread scheduler.  Run with the :mod:`repro.sanitize` runtime armed
  it must produce **zero** race/lock-order reports; run disarmed it
  must produce the **same final query results** (ingestion is a
  deterministic function of the seed, so the end state is
  interleaving-independent).

* :func:`run_pager_chaos` — hammers one :class:`~repro.db.pager.Pager`
  + B+Tree over the :class:`~repro.faults.shadowfs.ShadowFilesystem`,
  crashing with per-page persisted/lost/torn outcomes.  The pager's
  guarantee is *detection*, not journaling: a reopen either decodes (and
  then every surviving entry matches a value that was actually written,
  with all entries committed before the last flush intact when the
  crash hit a clean file) or raises a typed
  :class:`~repro.errors.TornPageError` / ``StorageError`` — never
  silently wrong data.

Schedules are plain strings so they can ride in a CLI flag::

    store.append.mid=crash@p:0.001;rpc.server.drop=raise@p:0.08

Entry grammar: ``name=action[@term,term...]`` joined by ``;`` where
``action`` is one of ``raise`` / ``crash`` / ``corrupt`` / ``count``
and each term is ``p:<float>``, ``times:<int>``, ``every:<int>`` or
``after:<int>`` (see :mod:`repro.faults.registry` for semantics).
"""

from __future__ import annotations

import logging
import os
import random
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import (
    CertificateError,
    NetworkError,
    ReproError,
    StorageError,
    TornPageError,
)
from repro.faults import netsplit
from repro.faults import registry as faults
from repro.faults.registry import InjectedFault, SimulatedCrash
from repro.faults.shadowfs import ShadowFilesystem
from repro.obs import metrics as obs
from repro.sanitize import runtime as san
from repro.sanitize.runtime import SanThread

logger = logging.getLogger("repro.faults")

#: The stock schedule for system chaos: faults on the ISP update
#: transaction, the node store's append/sync/compaction paths, and the
#: RPC transport.  Per-put probabilities are small because one ingest
#: performs hundreds of node appends.
DEFAULT_SYSTEM_SCHEDULE = (
    "isp.sync_update.pre=raise@p:0.05;"
    "isp.sync_update.pre_publish=crash@p:0.02;"
    "store.append.pre=raise@p:0.001;"
    "store.append.mid=crash@p:0.0005;"
    "store.sync.pre=crash@p:0.02;"
    "store.compact.pre_replace=crash@p:0.005;"
    "rpc.server.drop=raise@p:0.08;"
    "rpc.server.stall=raise@p:0.04;"
    "rpc.server.truncate=raise@p:0.005"
)

_POLICY_KEYS = {"times": int, "every": int, "after": int}


def parse_schedule(text: str) -> List[Tuple[str, str, Dict[str, Any]]]:
    """Parse a schedule string into ``(name, action, policy)`` triples."""
    entries: List[Tuple[str, str, Dict[str, Any]]] = []
    for chunk in text.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        if "=" not in chunk:
            raise ValueError(
                f"bad schedule entry {chunk!r}: expected name=action[@terms]"
            )
        name, spec = chunk.split("=", 1)
        action, _, terms = spec.partition("@")
        policy: Dict[str, Any] = {}
        for term in terms.split(","):
            term = term.strip()
            if not term:
                continue
            key, sep, value = term.partition(":")
            if not sep:
                raise ValueError(
                    f"bad schedule term {term!r} in {chunk!r}: "
                    "expected key:value"
                )
            if key == "p":
                policy["probability"] = float(value)
            elif key in _POLICY_KEYS:
                policy[key] = _POLICY_KEYS[key](value)
            else:
                raise ValueError(
                    f"unknown schedule term {key!r} in {chunk!r}"
                )
        entries.append((name.strip(), action.strip(), policy))
    return entries


def apply_schedule(text: str) -> List[str]:
    """Arm every entry of ``text``; returns the armed failpoint names."""
    armed = []
    for name, action, policy in parse_schedule(text):
        faults.arm(name, action, **policy)
        armed.append(name)
    return armed


@dataclass
class ChaosStats:
    """Counters accumulated by a chaos run."""

    steps: int = 0
    ingests: int = 0
    publishes: int = 0
    publish_retries: int = 0
    queries_ok: int = 0
    queries_failed: int = 0
    remote_queries_ok: int = 0
    remote_queries_failed: int = 0
    crashes: int = 0
    recoveries: int = 0
    clean_restarts: int = 0
    injected_faults: int = 0
    torn_detected: int = 0
    corruption_detected: int = 0
    netsplits: int = 0
    promotions: int = 0
    promotions_refused: int = 0
    fires: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            key: getattr(self, key)
            for key in (
                "steps", "ingests", "publishes", "publish_retries",
                "queries_ok", "queries_failed", "remote_queries_ok",
                "remote_queries_failed", "crashes", "recoveries",
                "clean_restarts", "injected_faults", "torn_detected",
                "corruption_detected", "netsplits", "promotions",
                "promotions_refused",
            )
        } | {"fires": dict(self.fires)}


def _snapshot_fires(stats: ChaosStats) -> None:
    for name, point in faults.stats().items():
        stats.fires[name] = stats.fires.get(name, 0) + point.fires


# ---------------------------------------------------------------------------
# System chaos
# ---------------------------------------------------------------------------


class SystemChaos:
    """One seeded chaos run over a durable-ISP V2FS system."""

    #: Bound on faulted publish attempts before the harness forces the
    #: update through with faults suspended (progress guarantee).
    MAX_PUBLISH_ATTEMPTS = 10

    #: Verified queries drawn at random each query step.
    QUERY_POOL = (
        "SELECT COUNT(*) FROM btc_transactions",
        "SELECT COUNT(*), SUM(fee) FROM btc_transactions",
        "SELECT COUNT(*), SUM(gas_used) FROM eth_transactions",
        "SELECT COUNT(*) FROM eth_token_transfers",
    )

    def __init__(
        self,
        seed: int,
        store_path: str,
        schedule: Optional[str] = None,
        use_rpc: bool = True,
        txs_per_block: int = 2,
    ) -> None:
        from repro.core.system import SystemConfig, V2FSSystem
        from repro.isp.server import IspServer
        from repro.merkle.ads import V2fsAds
        from repro.merkle.persistent_store import PersistentNodeStore

        self.rng = random.Random(seed)
        self.store_path = store_path
        self.use_rpc = use_rpc
        self.stats = ChaosStats()
        self._store_cls = PersistentNodeStore
        self._isp_cls = IspServer
        self._ads_cls = V2fsAds

        faults.reset()
        faults.seed(seed)
        self.schedule = schedule if schedule else DEFAULT_SYSTEM_SCHEDULE
        apply_schedule(self.schedule)

        with faults.suspended():
            self.system = V2FSSystem(
                SystemConfig(seed=seed, txs_per_block=txs_per_block)
            )
            bootstrap = self.system.update_reports[0]
            # Rebuild the ISP around an on-disk store and re-sync the
            # schema bootstrap; keep an in-memory oracle in lockstep.
            durable = IspServer()
            durable.ads = V2fsAds(PersistentNodeStore(store_path))
            durable.root = durable.ads.root
            self.system.isp = durable
            self.oracle = IspServer()
            for isp in (durable, self.oracle):
                isp.sync_update(
                    bootstrap.writes, bootstrap.new_sizes,
                    bootstrap.certificate,
                )
            # Seed one block per chain so queries (which check observed
            # chain heads) are meaningful from step 0.
            start = len(self.system.update_reports)
            self.system.advance_all(1)
            for report in self.system.update_reports[start:]:
                self.oracle.sync_update(
                    report.writes, report.new_sizes, report.certificate
                )
        self.last_cert = self.system.update_reports[-1].certificate
        self._rpc_server = None
        self._remote_client = None

    # -- helpers ----------------------------------------------------------

    @property
    def isp(self):
        return self.system.isp

    def _make_client(self, isp, mode=None):
        from repro.client.query_client import QueryClient
        from repro.client.vfs import QueryMode

        return QueryClient(
            isp=isp,
            chains=self.system.chains,
            attestation_report=self.system.attestation_report,
            attestation_root=self.system.attestation.root_public_key,
            expected_measurement=self.system.ci.enclave.measurement,
            mode=mode if mode is not None else QueryMode.INTER_VBF,
            cost_model=self.system.config.network,
        )

    def _start_rpc(self) -> None:
        from repro.rpc.client import connect_client
        from repro.rpc.server import IspBootstrap, RpcIspServer

        bootstrap = IspBootstrap(
            report=self.system.attestation_report,
            attestation_root=self.system.attestation.root_public_key,
            measurement=self.system.ci.enclave.measurement,
            chain_heads=lambda: {
                chain_id: chain.latest_header()
                for chain_id, chain in self.system.chains.items()
                if len(chain)
            },
        )
        server = RpcIspServer(self.isp, bootstrap=bootstrap)
        server.fault_stall_s = 0.5
        server.start()
        self._rpc_server = server
        host, port = server.address
        with faults.suspended():
            self._remote_client = connect_client(
                host, port, timeout_s=0.25, max_retries=4
            )

    def close(self) -> None:
        if self._rpc_server is not None:
            self._rpc_server.stop()
            self._rpc_server = None
        _snapshot_fires(self.stats)
        faults.reset()
        try:
            self.isp.ads.store.close()
        except Exception:  # store may already be crashed shut
            pass

    # -- step implementations --------------------------------------------

    def _reopen(self, crashed: bool) -> None:
        """Model process death (or a clean restart) plus recovery.

        Recovery rebuilds the ISP from the reopened on-disk store and
        the last *durably published* certificate — the only root the
        restarted process may legitimately serve.
        """
        with faults.suspended():
            store = self.isp.ads.store
            if crashed:
                store.simulate_crash(self.rng)
            else:
                store.close()
            reopened = self._isp_cls()
            reopened.ads = self._ads_cls.__new__(self._ads_cls)
            reopened.ads.store = self._store_cls(self.store_path)
            reopened.ads.root = self.last_cert.ads_root
            reopened.root = self.last_cert.ads_root
            reopened.certificate = self.last_cert
            self.system.isp = reopened
            if self._rpc_server is not None:
                self._rpc_server.isp = reopened
            # Never a stale root: the recovered certificate is exactly
            # the last one that was fully published ...
            assert reopened.root == self.last_cert.ads_root
            assert reopened.certificate.version == self.last_cert.version
            # ... and every node it references survived on disk.
            reopened.ads.list_files(reopened.root)
        self.stats.recoveries += 1
        if obs.ACTIVE:
            obs.inc("chaos.recoveries")

    def _publish(self, report) -> None:
        """Publish one certified report through the faulted update path."""
        for attempt in range(self.MAX_PUBLISH_ATTEMPTS):
            try:
                self.isp.sync_update(
                    report.writes, report.new_sizes, report.certificate
                )
            except InjectedFault:
                # Transactional: nothing observable changed; retry.
                self.stats.injected_faults += 1
                self.stats.publish_retries += 1
                continue
            except SimulatedCrash:
                self.stats.crashes += 1
                if obs.ACTIVE:
                    obs.inc("chaos.crashes")
                self.stats.publish_retries += 1
                self._reopen(crashed=True)
                continue
            break
        else:
            with faults.suspended():
                self.isp.sync_update(
                    report.writes, report.new_sizes, report.certificate
                )
        # The durable publish record: only now is the update "published"
        # from the recovery protocol's point of view.
        self.last_cert = report.certificate
        self.stats.publishes += 1
        with faults.suspended():
            self.oracle.sync_update(
                report.writes, report.new_sizes, report.certificate
            )

    def _ingest(self) -> None:
        """One block through chain + CI (trusted, suspended), then the
        faulted ISP publish path."""
        chain_id = self.rng.choice(sorted(self.system.chains))
        isp = self.isp
        with faults.suspended():
            isp.sync_update = lambda writes, sizes, cert: None
            try:
                report = self.system.advance_block(chain_id)
            finally:
                del isp.sync_update
        self._publish(report)
        self.stats.ingests += 1

    def _expected_rows(self, sql: str):
        with faults.suspended():
            return self._make_client(self.oracle).query(sql).rows

    def _query(self) -> None:
        from repro.client.vfs import QueryMode

        sql = self.rng.choice(self.QUERY_POOL)
        remote = self.use_rpc and self.rng.random() < 0.5
        try:
            if remote:
                result = self._remote_client.query(sql)
            else:
                mode = self.rng.choice(list(QueryMode))
                result = self._make_client(self.isp, mode).query(sql)
        except ReproError as error:
            # An aborted query is acceptable under faults — a *wrong*
            # one never is.  Crashes are not: only _publish crashes.
            logger.info("chaos query aborted: %s", type(error).__name__)
            if remote:
                self.stats.remote_queries_failed += 1
            else:
                self.stats.queries_failed += 1
            return
        assert result.rows == self._expected_rows(sql), (
            f"verified query diverged from oracle for {sql!r}"
        )
        if remote:
            self.stats.remote_queries_ok += 1
        else:
            self.stats.queries_ok += 1

    # -- driver -----------------------------------------------------------

    def run(self, steps: int) -> ChaosStats:
        if self.use_rpc:
            self._start_rpc()
        try:
            for _ in range(steps):
                self.stats.steps += 1
                if obs.ACTIVE:
                    obs.inc("chaos.steps")
                roll = self.rng.random()
                if roll < 0.35:
                    self._ingest()
                elif roll < 0.85:
                    self._query()
                elif roll < 0.95:
                    self.stats.crashes += 1
                    if obs.ACTIVE:
                        obs.inc("chaos.crashes")
                    self._reopen(crashed=True)
                else:
                    self.stats.clean_restarts += 1
                    self._reopen(crashed=False)
            # Closing sweep: with faults off, the durable ISP must agree
            # with the oracle on every pool query, on the published root.
            with faults.suspended():
                assert self.isp.root == self.last_cert.ads_root
                client = self._make_client(self.isp)
                for sql in self.QUERY_POOL:
                    assert client.query(sql).rows == self._expected_rows(sql)
        finally:
            self.close()
        return self.stats


def run_system_chaos(
    seed: int,
    steps: int = 200,
    schedule: Optional[str] = None,
    use_rpc: bool = True,
    txs_per_block: int = 2,
    store_path: Optional[str] = None,
) -> ChaosStats:
    """Run one seeded system chaos episode; returns its stats.

    Raises ``AssertionError`` the moment an invariant breaks.  When
    ``store_path`` is omitted a temporary directory hosts the store.
    """
    if store_path is None:
        store_path = os.path.join(
            tempfile.mkdtemp(prefix="v2fs-chaos-"), "ads.log"
        )
    chaos = SystemChaos(
        seed, store_path, schedule=schedule, use_rpc=use_rpc,
        txs_per_block=txs_per_block,
    )
    return chaos.run(steps)


# ---------------------------------------------------------------------------
# Concurrent chaos (the sanitizer's stress workload)
# ---------------------------------------------------------------------------


def _query_with_retries(client, sql: str, deadline_s: float = 20.0):
    """Retry around the inherent certificate race with live ingestion.

    A client that validated certificate version N can lose the race to
    a concurrent publish; the ISP answers ``open_session`` with a typed
    "superseded" error.  Transient by construction: refetch and retry
    until the deadline.
    """
    deadline = time.monotonic() + deadline_s
    while True:
        try:
            return client.query(sql)
        except (CertificateError, NetworkError):
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.02)


def _build_durable_system(seed: int, txs_per_block: int,
                          store_path: str):
    """A V2FSSystem whose ISP persists its ADS on disk (one bootstrap
    block per chain already ingested)."""
    from repro.core.system import SystemConfig, V2FSSystem
    from repro.isp.server import IspServer
    from repro.merkle.ads import V2fsAds
    from repro.merkle.persistent_store import PersistentNodeStore

    system = V2FSSystem(SystemConfig(seed=seed, txs_per_block=txs_per_block))
    bootstrap = system.update_reports[0]
    durable = IspServer()
    durable.ads = V2fsAds(PersistentNodeStore(store_path))
    durable.root = durable.ads.root
    durable.sync_update(
        bootstrap.writes, bootstrap.new_sizes, bootstrap.certificate
    )
    system.isp = durable
    system.advance_all(1)
    return system


def run_concurrent_chaos(
    seed: int,
    *,
    clients: int = 4,
    queries_per_client: int = 6,
    ingest_blocks: int = 6,
    armed: bool = True,
    txs_per_block: int = 2,
    store_path: Optional[str] = None,
    server_class: Optional[type] = None,
) -> Dict[str, Any]:
    """N querying threads vs. a live-ingesting ISP over real sockets.

    Arms the :mod:`repro.sanitize` runtime when ``armed`` (SanLocks
    feed the lock-order graph, SanThreads carry fork/join clocks, and
    the tracked shared structures — session table, page map, metrics
    instrument map, connection list — go through the Eraser tracker).
    Returns a result dict; the harness itself asserts nothing, so
    callers can compare armed and disarmed runs::

        {"armed": ..., "final_rows": {sql: rows}, "queries_ok": int,
         "client_errors": [str], "reports": [rendered report]}

    ``final_rows`` is captured after every thread has joined, with the
    same block count ingested on the same system seed, so two runs of
    the same ``seed`` must agree exactly — any divergence means an
    interleaving corrupted state.
    """
    if store_path is None:
        store_path = os.path.join(
            tempfile.mkdtemp(prefix="v2fs-sanitize-"), "ads.log"
        )
    san.reset()
    if armed:
        san.arm()
    result: Dict[str, Any] = {
        "armed": armed, "final_rows": {}, "queries_ok": 0,
        "client_errors": [], "reports": [],
    }
    try:
        from repro.rpc.client import connect_client
        from repro.rpc.server import serve_system

        rng = random.Random(seed)
        system = _build_durable_system(seed, txs_per_block, store_path)
        pool = SystemChaos.QUERY_POOL
        # Pre-drawn so the block sequence is a function of the seed
        # alone, not of how threads interleave with the rng.
        chain_plan = [
            rng.choice(sorted(system.chains)) for _ in range(ingest_blocks)
        ]
        if server_class is None:
            server = serve_system(system)
        else:
            # e.g. repro.serve.AsyncIspServer: the same chaos campaign
            # against the event-loop serving path.
            server = serve_system(system, server_class=server_class)
        # Per-thread slots (and list.append, atomic under the GIL) —
        # the harness itself must not need a lock.
        errors: List[str] = []
        ok = [0] * clients

        def ingest_loop() -> None:
            for chain_id in chain_plan:
                system.advance_block(chain_id)
                time.sleep(0.005)  # let queries land between publishes

        def client_loop(slot: int) -> None:
            host, port = server.address
            client = connect_client(host, port)
            try:
                for index in range(queries_per_client):
                    sql = pool[(slot + index) % len(pool)]
                    _query_with_retries(client, sql)
                    ok[slot] += 1
            except ReproError as error:
                errors.append(
                    f"client {slot}: {type(error).__name__}: {error}"
                )
            finally:
                client.isp.close()

        with server:
            threads = [
                SanThread(target=ingest_loop, name="chaos-ingest")
            ] + [
                SanThread(target=client_loop, args=(slot,),
                          name=f"chaos-client-{slot}")
                for slot in range(clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            # Every thread joined: the end state is now deterministic.
            host, port = server.address
            sweep = connect_client(host, port)
            try:
                for sql in pool:
                    result["final_rows"][sql] = sweep.query(sql).rows
            finally:
                sweep.isp.close()
        result["queries_ok"] = sum(ok)
        result["client_errors"] = errors
        system.isp.ads.store.close()
    finally:
        result["reports"] = [report.render() for report in san.reports()]
        san.reset()
    return result


# ---------------------------------------------------------------------------
# Fleet chaos
# ---------------------------------------------------------------------------

#: The stock schedule for fleet chaos: sever router fan-out, hold back
#: replica shipments, and kill shard primaries at sync fan-out time,
#: with a sprinkle of plain wire drops on the shard servers.
DEFAULT_FLEET_SCHEDULE = (
    "fleet.router.fanout=raise@p:0.04;"
    "fleet.replica.lag=raise@p:0.25;"
    "fleet.shard.crash=raise@p:0.10;"
    "rpc.server.drop=raise@p:0.02"
)

#: Named failure-domain scenarios for :class:`FleetChaos` (and the
#: ``repro fleet --chaos NAME`` CLI).  Each pairs a fault schedule with
#: a step mix exercising one failure domain; ``None``/``"default"`` is
#: the stock mixed run above.
FLEET_SCENARIOS: Dict[str, str] = {
    # Blackholed router<->primary links: reads survive via replicas or
    # abort typed; heals between steps, so the fleet always recovers.
    "netsplit": (
        "fleet.replica.lag=raise@p:0.10;"
        "rpc.server.drop=raise@p:0.02"
    ),
    # Primaries die mid-load and caught-up replicas take over
    # (certificate-gated promotion + shard-map epoch bump).
    "kill-primary": (
        "fleet.replica.lag=raise@p:0.10;"
        "rpc.server.drop=raise@p:0.02"
    ),
    # Replication shipments are mostly withheld, so promotions land on
    # *stale* replicas — which must refuse.
    "promote-lag": (
        "fleet.replica.lag=raise@p:0.60;"
        "rpc.server.drop=raise@p:0.02"
    ),
}


class FleetChaos:
    """One seeded chaos run over a sharded, replicated fleet.

    The invariants mirror :class:`SystemChaos`, lifted to the fleet:

    - every query that completes through the router verifies against
      ``pk_sgx`` and matches an in-memory single-node **oracle** fed
      the same certified reports with faults suspended — a fleet of
      shards must be observationally identical to one ISP;
    - a publish interrupted by a shard crash never acks: the router
      raises, the harness restarts the shard and retries, and the
      per-shard idempotency completes exactly the stragglers;
    - killed shards, netsplits, and promotions only ever cause
      *aborted* queries (typed errors), never wrong or
      unverifiable-but-accepted results — and every query, verified or
      aborted, lands inside its wall-clock envelope (deadlines
      propagate, so nothing hangs).

    The named :data:`FLEET_SCENARIOS` focus the step mix on one failure
    domain: ``netsplit`` blackholes router↔primary links mid-query,
    ``kill-primary`` kills primaries and promotes caught-up replicas,
    ``promote-lag`` withholds replication and checks stale replicas
    refuse promotion.
    """

    MAX_PUBLISH_ATTEMPTS = 10
    QUERY_POOL = SystemChaos.QUERY_POOL

    def __init__(
        self,
        seed: int,
        shard_count: int = 3,
        replicas: int = 2,
        schedule: Optional[str] = None,
        txs_per_block: int = 2,
        scenario: Optional[str] = None,
        deadline_s: float = 8.0,
    ) -> None:
        from repro.core.system import SystemConfig, V2FSSystem
        from repro.fleet.lifecycle import Fleet
        from repro.isp.server import IspServer
        from repro.rpc.client import connect_client

        if scenario in ("", "default"):
            scenario = None
        if scenario is not None and scenario not in FLEET_SCENARIOS:
            raise ValueError(
                f"unknown fleet scenario {scenario!r}; pick one of "
                + ", ".join(sorted(FLEET_SCENARIOS))
            )
        self.scenario = scenario
        self.deadline_s = deadline_s
        #: The no-hang envelope for one client query.  A query is many
        #: RPCs (session, metas, pages, finalize), each with its own
        #: ``deadline_s`` budget plus retry backoff — the envelope is a
        #: generous multiple, and a hang blows through any multiple.
        self.query_envelope_s = max(30.0, deadline_s * 8)
        self.rng = random.Random(seed)
        self.stats = ChaosStats()
        faults.reset()
        faults.seed(seed)
        netsplit.heal()
        if schedule:
            self.schedule = schedule
        elif scenario is not None:
            self.schedule = FLEET_SCENARIOS[scenario]
        else:
            self.schedule = DEFAULT_FLEET_SCHEDULE
        apply_schedule(self.schedule)

        with faults.suspended():
            self.system = V2FSSystem(
                SystemConfig(seed=seed, txs_per_block=txs_per_block)
            )
            self.system.advance_all(1)
            self.oracle = IspServer()
            for report in self.system.update_reports:
                self.oracle.sync_update(
                    report.writes, report.new_sizes, report.certificate
                )
            self.fleet = Fleet(
                self.system, shard_count=shard_count, replicas=replicas
            )
            self.fleet.start()
            host, port = self.fleet.router_address
            self._remote_client = connect_client(
                host, port, timeout_s=2.0, max_retries=4,
                deadline_s=deadline_s,
            )
        self.last_cert = self.system.update_reports[-1].certificate

    def close(self) -> None:
        _snapshot_fires(self.stats)
        faults.reset()
        netsplit.heal()
        self._remote_client.isp.close()
        self.fleet.stop()

    # -- helpers ----------------------------------------------------------

    def _make_client(self, isp, mode=None):
        from repro.client.query_client import QueryClient
        from repro.client.vfs import QueryMode

        return QueryClient(
            isp=isp,
            chains=self.system.chains,
            attestation_report=self.system.attestation_report,
            attestation_root=self.system.attestation.root_public_key,
            expected_measurement=self.system.ci.enclave.measurement,
            mode=mode if mode is not None else QueryMode.INTER_VBF,
            cost_model=self.system.config.network,
        )

    def _restart_down_shards(self) -> None:
        for shard_id in self.fleet.down_shards():
            with faults.suspended():
                self.fleet.restart_shard(shard_id)
            self.stats.recoveries += 1
            if obs.ACTIVE:
                obs.inc("chaos.recoveries")

    # -- step implementations --------------------------------------------

    def _publish(self, report) -> None:
        """Fan one certified report out through the faulted router path.

        The router's per-shard idempotency is what makes the retry loop
        correct: an attempt that crashed one shard mid-fan-out left the
        others acked, and the next attempt (after restarting the dead
        primary) completes only the stragglers.
        """
        for _ in range(self.MAX_PUBLISH_ATTEMPTS):
            self._restart_down_shards()
            try:
                self.system.isp.sync_update(
                    report.writes, report.new_sizes, report.certificate
                )
            except (InjectedFault, ReproError):
                self.stats.injected_faults += 1
                self.stats.publish_retries += 1
                continue
            break
        else:
            self._restart_down_shards()
            with faults.suspended():
                self.system.isp.sync_update(
                    report.writes, report.new_sizes, report.certificate
                )
        self.last_cert = report.certificate
        self.stats.publishes += 1
        with faults.suspended():
            self.oracle.sync_update(
                report.writes, report.new_sizes, report.certificate
            )

    def _ingest(self) -> None:
        chain_id = self.rng.choice(sorted(self.system.chains))
        isp = self.system.isp
        with faults.suspended():
            isp.sync_update = lambda writes, sizes, cert: None
            try:
                report = self.system.advance_block(chain_id)
            finally:
                del isp.sync_update
        self._publish(report)
        self.stats.ingests += 1

    def _expected_rows(self, sql: str):
        with faults.suspended():
            return self._make_client(self.oracle).query(sql).rows

    def _query(self) -> None:
        """One client query under faults: verified-or-typed-abort,
        always inside the no-hang envelope."""
        sql = self.rng.choice(self.QUERY_POOL)
        start = time.monotonic()
        try:
            result = self._remote_client.query(sql)
        except ReproError as error:
            # Aborted is acceptable under faults (severed fan-out, dead
            # shard, dropped connection, epoch bump) — wrong never is,
            # and the typed abort must land within the envelope.
            elapsed = time.monotonic() - start
            logger.info(
                "fleet chaos query aborted after %.2fs: %s",
                elapsed, type(error).__name__,
            )
            assert elapsed <= self.query_envelope_s, (
                f"aborting query hung for {elapsed:.1f}s "
                f"(envelope {self.query_envelope_s:.1f}s)"
            )
            self.stats.remote_queries_failed += 1
            return
        elapsed = time.monotonic() - start
        assert elapsed <= self.query_envelope_s, (
            f"query hung for {elapsed:.1f}s "
            f"(envelope {self.query_envelope_s:.1f}s)"
        )
        assert result.rows == self._expected_rows(sql), (
            f"fleet query diverged from oracle for {sql!r}"
        )
        self.stats.remote_queries_ok += 1

    def _kill_and_query(self) -> None:
        """Kill a random primary mid-load, query through the gap, then
        restart it."""
        shard_id = self.rng.randrange(self.fleet.shard_count)
        self.fleet.kill_shard(shard_id)
        self.stats.crashes += 1
        if obs.ACTIVE:
            obs.inc("chaos.crashes")
        self._query()
        self._restart_down_shards()

    def _netsplit_and_query(self) -> None:
        """Blackhole the router↔primary link of one shard mid-query.

        The router's retries burn into the partition and fail typed
        (never hang: the client deadline caps every attempt); reads of
        that shard either ride a caught-up replica or abort.  The split
        heals afterward — partitions end, and the closing sweep proves
        the healed fleet converged with the oracle.
        """
        shard_id = self.rng.randrange(self.fleet.shard_count)
        endpoint = (
            self.fleet.host, self.fleet._shard_ports[shard_id]
        )
        netsplit.sever_pair("router", endpoint)
        self.stats.netsplits += 1
        if obs.ACTIVE:
            obs.inc("chaos.netsplits")
        try:
            self._query()
        finally:
            netsplit.heal(endpoint)

    def _kill_primary_and_promote(self) -> None:
        """Kill one primary, query through the gap, then fail over.

        Promotion is certificate-gated, so it can *refuse* when the
        replication-lag failpoint left every replica behind — then the
        old primary restarts instead (both outcomes are legitimate
        recoveries; the sweep checks convergence either way).
        """
        shard_id = self.rng.randrange(self.fleet.shard_count)
        self.fleet.kill_shard(shard_id)
        self.stats.crashes += 1
        if obs.ACTIVE:
            obs.inc("chaos.crashes")
        self._query()
        with faults.suspended():
            if self.fleet.replicas.get(shard_id):
                try:
                    self.fleet.promote_replica(shard_id)
                    self.stats.promotions += 1
                except ReproError:
                    self.stats.promotions_refused += 1
                    self.fleet.restart_shard(shard_id)
            else:
                self.fleet.restart_shard(shard_id)
        self._query()

    def _promote_under_lag(self) -> None:
        """Attempt promotion while replication is withheld.

        The invariant is exact: a replica with pending log entries must
        refuse (it would serve a rolled-back snapshot as authority),
        and a fully-shipped replica must accept.
        """
        candidates = [
            shard_id
            for shard_id, pairs in sorted(self.fleet.replicas.items())
            if pairs
        ]
        if not candidates:
            self._query()
            return
        shard_id = self.rng.choice(candidates)
        label, _ = self.fleet.replicas[shard_id][0]
        lag = self.fleet.logs[shard_id].lag_of(label)
        with faults.suspended():
            try:
                self.fleet.promote_replica(shard_id, label=label)
            except ReproError:
                self.stats.promotions_refused += 1
                assert lag > 0, (
                    f"caught-up replica {label} refused promotion"
                )
            else:
                self.stats.promotions += 1
                assert lag == 0, (
                    f"replica {label} accepted promotion while "
                    f"{lag} deltas behind"
                )
        self._query()

    # -- driver -----------------------------------------------------------

    def _step(self) -> None:
        roll = self.rng.random()
        if self.scenario == "netsplit":
            if roll < 0.25:
                self._ingest()
            elif roll < 0.60:
                self._query()
            else:
                self._netsplit_and_query()
        elif self.scenario == "kill-primary":
            if roll < 0.25:
                self._ingest()
            elif roll < 0.65:
                self._query()
            else:
                self._kill_primary_and_promote()
        elif self.scenario == "promote-lag":
            if roll < 0.30:
                self._ingest()
            elif roll < 0.70:
                self._query()
            else:
                self._promote_under_lag()
        elif roll < 0.30:
            self._ingest()
        elif roll < 0.85:
            self._query()
        else:
            self._kill_and_query()

    def run(self, steps: int) -> ChaosStats:
        try:
            for _ in range(steps):
                self.stats.steps += 1
                if obs.ACTIVE:
                    obs.inc("chaos.steps")
                self._step()
            # Closing sweep: faults off, partitions healed, every shard
            # up — every pool query through the router must agree with
            # the fault-free oracle (post-recovery convergence).  A
            # *fresh* client connection: the chaos client's circuit
            # breaker may still be cooling down from the fault phase,
            # and residual router-side breakers get retried through.
            from repro.rpc.client import connect_client

            netsplit.heal()
            self._restart_down_shards()
            with faults.suspended():
                host, port = self.fleet.router_address
                sweep = connect_client(
                    host, port, timeout_s=2.0, max_retries=4
                )
                try:
                    for sql in self.QUERY_POOL:
                        rows = _query_with_retries(
                            sweep, sql, deadline_s=30.0
                        ).rows
                        assert rows == self._expected_rows(sql), (
                            f"closing sweep diverged for {sql!r}"
                        )
                finally:
                    sweep.isp.close()
        finally:
            self.close()
        return self.stats


def run_fleet_chaos(
    seed: int,
    steps: int = 40,
    shard_count: int = 3,
    replicas: int = 2,
    schedule: Optional[str] = None,
    txs_per_block: int = 2,
    scenario: Optional[str] = None,
    deadline_s: float = 8.0,
) -> ChaosStats:
    """Run one seeded fleet chaos episode; returns its stats.

    ``scenario`` picks a named failure domain from
    :data:`FLEET_SCENARIOS` (``netsplit`` / ``kill-primary`` /
    ``promote-lag``); ``None`` runs the stock mixed schedule.  Raises
    ``AssertionError`` the moment an invariant breaks.
    """
    chaos = FleetChaos(
        seed, shard_count=shard_count, replicas=replicas,
        schedule=schedule, txs_per_block=txs_per_block,
        scenario=scenario, deadline_s=deadline_s,
    )
    return chaos.run(steps)


# ---------------------------------------------------------------------------
# Pager chaos
# ---------------------------------------------------------------------------


def run_pager_chaos(seed: int, steps: int = 300) -> ChaosStats:
    """Crash-consistency chaos for the pager + B+Tree over shadow files.

    Random inserts interleave with commits (``flush`` → file ``sync``)
    and crashes with per-page persisted/lost/torn outcomes.  On reopen,
    either decoding fails *loudly* (torn/corrupt detection — the file is
    then rebuilt from scratch, modelling restore-from-backup) or every
    recovered entry must match a value that was actually written; if the
    crash hit a fully committed file, the recovered contents must equal
    the committed contents exactly.
    """
    from repro.db.btree import BTree
    from repro.db.pager import Pager

    rng = random.Random(seed)
    fs = ShadowFilesystem(rng=random.Random(seed + 1))
    stats = ChaosStats()
    generation = 0
    path = f"chaos-{generation}.tbl"
    tree = BTree(Pager(fs, path, create=True))
    committed: Dict[int, bytes] = {}
    pending: Dict[int, bytes] = {}
    next_key = 0

    def rebuild(survivors: Dict[int, bytes]) -> None:
        nonlocal tree, path, generation, committed, pending
        generation += 1
        path = f"chaos-{generation}.tbl"
        tree = BTree(Pager(fs, path, create=True))
        for key in sorted(survivors):
            tree.insert([key], survivors[key])
        tree.pager.flush()
        committed = dict(survivors)
        pending = {}

    for _ in range(steps):
        stats.steps += 1
        if obs.ACTIVE:
            obs.inc("chaos.steps")
        roll = rng.random()
        if roll < 0.70:
            value = bytes(
                rng.getrandbits(8) for _ in range(rng.randrange(16, 200))
            )
            tree.insert([next_key], value)
            pending[next_key] = value
            next_key += 1
        elif roll < 0.85:
            tree.pager.flush()
            committed.update(pending)
            pending.clear()
        else:
            stats.crashes += 1
            if obs.ACTIVE:
                obs.inc("chaos.crashes")
            dirty = fs.dirty_pages(path)
            fs.crash()
            try:
                reopened = BTree(Pager(fs, path))
                found = {key[0]: value for key, value in reopened.items()}
            except TornPageError:
                stats.torn_detected += 1
                rebuild(committed)
            except StorageError:
                stats.corruption_detected += 1
                rebuild(committed)
            else:
                for key, value in found.items():
                    expected = pending.get(key, committed.get(key))
                    assert value == expected, (
                        f"recovered entry {key} has a value that was "
                        "never written"
                    )
                if not dirty:
                    assert found == committed, (
                        "crash with no dirty pages must preserve the "
                        "committed contents exactly"
                    )
                rebuild(found)
            stats.recoveries += 1
            if obs.ACTIVE:
                obs.inc("chaos.recoveries")

    # Closing check: a clean flush + crash + reopen round-trips exactly.
    tree.pager.flush()
    committed.update(pending)
    fs.crash()
    reopened = BTree(Pager(fs, path))
    assert {k[0]: v for k, v in reopened.items()} == committed
    return stats
