"""Central catalog of every failpoint name in the codebase.

A failpoint that is armed but never reached is a chaos schedule that
silently tests nothing — exactly the kind of rot a typo'd name causes.
Two independent checks keep the catalog and the call sites in lock-step:

* **runtime** — :meth:`repro.faults.registry.FailpointRegistry.arm`
  rejects names missing from :data:`FAILPOINTS` (with a did-you-mean
  hint), so a schedule like ``store.apend.mid=crash`` fails loudly at
  arm time instead of running a no-op chaos campaign;
* **static** — the ``failpoint-names`` rule of :mod:`repro.analysis`
  cross-checks every ``faults.fire``/``faults.mangle``/``faults.arm``
  string literal in ``src/`` against this catalog, so an instrumented
  call site cannot reference an undeclared (hence un-armable) name.

Tests that need throwaway names declare them with :func:`declare`
before arming.
"""

from __future__ import annotations

import difflib
from typing import Dict, List

#: Every production failpoint: name -> what firing there models.
FAILPOINTS: Dict[str, str] = {
    # -- pager (repro/db/pager.py) -------------------------------------
    "pager.write_page.pre":
        "Before a sealed data page reaches the file: a write that never "
        "happened.",
    "pager.write_page.data":
        "Mangles the sealed page bytes on their way to the file: a "
        "misdirected or bit-rotted write, caught on read-back.",
    "pager.read_page":
        "Mangles raw bytes coming back from the file: at-rest disk "
        "corruption, caught by the checksum epilogue.",
    "pager.flush.pre_sync":
        "Between writing the header and sync(): the window where a crash "
        "loses un-fsynced state.",
    # -- persistent node store (repro/merkle/persistent_store.py) ------
    "store.sync.pre":
        "Before the group-commit fsync: a crash here may lose every "
        "append since the previous durable boundary.",
    "store.append.pre":
        "Before a node record is appended to the log.",
    "store.append.payload":
        "Mangles an appended node payload: corruption detected by the "
        "digest check on read-back.",
    "store.append.mid":
        "Between the record header and its payload: a torn append "
        "leaving a partial record at the log tail.",
    "store.compact.pre_replace":
        "After writing the compacted log, before the atomic rename.",
    "store.compact.post_replace":
        "After the atomic rename, before the directory fsync settles.",
    # -- ISP synchronization (repro/isp/server.py) ---------------------
    "isp.sync_update.pre":
        "Before the CI's write batch is staged: the whole update is "
        "lost and must be retried.",
    "isp.sync_update.pre_publish":
        "Staged and verified but not yet durable or visible: a crash "
        "here must leave the served root/certificate untouched.",
    # -- RPC server (repro/rpc/server.py) ------------------------------
    "rpc.server.drop":
        "Drops the connection before a request is handled.",
    "rpc.server.stall":
        "Stalls a request long enough to trip the client timeout.",
    "rpc.server.truncate":
        "Truncates a response frame mid-payload on the wire.",
    "rpc.server.crash":
        "Kills a request handler between admission and release — the "
        "worst spot for the in-flight counter; regression probe for "
        "admission-slot leaks.",
    # -- ISP fleet (repro/fleet/) --------------------------------------
    "fleet.router.fanout":
        "Severs the router's fan-out to one owning shard mid-query: a "
        "network partition between router and shard.",
    "fleet.replica.lag":
        "Withholds a replication-log shipment to one replica, leaving "
        "it one or more certified versions behind its primary.",
    "fleet.shard.crash":
        "Kills a shard primary at sync fan-out time: the fleet update "
        "cannot fully ack until the shard is restarted and caught up.",
    "fleet.health.miss":
        "Drops one heartbeat probe before it reaches the endpoint: "
        "models lost heartbeats (and, sustained, a false death "
        "verdict) without touching the endpoint itself.",
}


def declare(name: str, doc: str) -> None:
    """Register an extra failpoint name (test-local hooks).

    Production code must add its names to :data:`FAILPOINTS` directly so
    the static ``failpoint-names`` rule can see them; ``declare`` exists
    for tests that exercise the registry with throwaway names.
    """
    FAILPOINTS[name] = doc


def is_declared(name: str) -> bool:
    return name in FAILPOINTS


def suggest(name: str, count: int = 3) -> List[str]:
    """Closest declared names to ``name`` (for arm-time error messages)."""
    return difflib.get_close_matches(name, FAILPOINTS, n=count, cutoff=0.6)
