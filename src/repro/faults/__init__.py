"""``repro.faults`` — failpoint injection and chaos testing.

Production code paths carry named failpoints (see
:mod:`repro.faults.registry`); this package also provides the shadow
dirty-vs-durable filesystem used to model power loss
(:mod:`repro.faults.shadowfs`) and the randomized chaos/recovery harness
(:mod:`repro.faults.chaos`).

Hot call sites import the registry module directly
(``from repro.faults import registry as faults``) so the disabled-path
guard ``faults.ACTIVE`` is one live module-attribute read; everything
else can use the re-exports here.
"""

from __future__ import annotations

from repro.faults import registry as _registry_module
from repro.faults.catalog import FAILPOINTS, declare, is_declared
from repro.faults.registry import (
    ACTION_CORRUPT,
    ACTION_COUNT,
    ACTION_CRASH,
    ACTION_RAISE,
    Failpoint,
    FailpointRegistry,
    InjectedFault,
    SimulatedCrash,
    arm,
    disarm,
    fire,
    get_registry,
    mangle,
    reset,
    seed,
    stats,
    suspended,
)

__all__ = [
    "ACTION_CORRUPT",
    "ACTION_COUNT",
    "ACTION_CRASH",
    "ACTION_RAISE",
    "ACTIVE",
    "FAILPOINTS",
    "Failpoint",
    "FailpointRegistry",
    "InjectedFault",
    "SimulatedCrash",
    "arm",
    "declare",
    "disarm",
    "is_declared",
    "fire",
    "get_registry",
    "mangle",
    "reset",
    "seed",
    "stats",
    "suspended",
]


def __getattr__(name: str):
    # ``ACTIVE`` mutates inside the registry module; forward reads so
    # ``repro.faults.ACTIVE`` is always live (PEP 562).
    if name == "ACTIVE":
        return _registry_module.ACTIVE
    raise AttributeError(name)
