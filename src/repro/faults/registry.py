"""Process-wide failpoint registry.

A *failpoint* is a named hook compiled into a production code path
(``faults.fire("pager.write_page.pre")``) that does nothing until a test
or an operator **arms** it with a trigger policy and an action.  The
design goals, in order:

1. **Zero cost when disabled.**  Instrumented sites guard every hook
   behind the module-level :data:`ACTIVE` flag — one attribute read on
   the hot path, no function call, no dictionary lookup.
2. **Deterministic.**  Probabilistic triggers draw from one seeded RNG
   owned by the registry, so a chaos schedule replays exactly from its
   seed (the CLI's ``--fault-schedule``/``--fault-seed``).
3. **Typed failure modes.**  An armed failpoint either raises
   :class:`InjectedFault` (an operational error the code under test must
   handle or surface), raises :class:`SimulatedCrash` (a process death:
   deliberately *not* a :class:`~repro.errors.ReproError`, so blanket
   ``except Exception`` recovery code cannot swallow it), corrupts bytes
   flowing through :func:`mangle`, or runs an arbitrary callable (used
   by the RPC layer for wire-level behaviours like frame truncation).

Trigger policies compose: ``after`` skips the first N hits, ``every``
fires each Nth remaining hit, ``probability`` gates each candidate hit
through the seeded RNG, and ``times`` bounds the total number of fires.
"""

from __future__ import annotations

import logging
import random
import threading
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.errors import ReproError
from repro.faults.catalog import is_declared, suggest

logger = logging.getLogger("repro.faults")

#: Fast-path flag read by instrumented call sites (``if faults.ACTIVE:``).
#: True exactly while at least one failpoint is armed and not suspended.
ACTIVE = False


class InjectedFault(ReproError):
    """An operational failure injected by an armed failpoint.

    Subclasses :class:`~repro.errors.ReproError`, so the production
    error handling (RPC error frames, transactional rollback, client
    retries) treats it exactly like the real failure it stands in for.
    """

    def __init__(self, failpoint: str, message: str = "") -> None:
        self.failpoint = failpoint
        super().__init__(
            message or f"injected fault at failpoint {failpoint!r}"
        )


class SimulatedCrash(BaseException):
    """A simulated hard crash (power loss / SIGKILL) at a failpoint.

    Inherits :class:`BaseException` — like ``KeyboardInterrupt`` — so no
    ``except Exception`` recovery path can absorb it: the "process" is
    dead, and only the chaos harness (which models the reboot) may catch
    it.  Durability is then judged by what an un-fsynced file model
    preserves: see :class:`repro.faults.shadowfs.ShadowFilesystem` and
    :meth:`repro.merkle.persistent_store.PersistentNodeStore.simulate_crash`.
    """

    def __init__(self, failpoint: str) -> None:
        self.failpoint = failpoint
        super().__init__(f"simulated crash at failpoint {failpoint!r}")


#: Builtin action names accepted by :meth:`FailpointRegistry.arm`.
ACTION_RAISE = "raise"
ACTION_CRASH = "crash"
ACTION_CORRUPT = "corrupt"
ACTION_COUNT = "count"

_BUILTIN_ACTIONS = (ACTION_RAISE, ACTION_CRASH, ACTION_CORRUPT, ACTION_COUNT)


class Failpoint:
    """One armed failpoint: a trigger policy plus an action."""

    def __init__(
        self,
        name: str,
        action: "str | Callable[[Dict[str, Any]], Any]",
        *,
        times: Optional[int] = None,
        every: Optional[int] = None,
        probability: Optional[float] = None,
        after: int = 0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if isinstance(action, str) and action not in _BUILTIN_ACTIONS:
            raise ValueError(
                f"unknown failpoint action {action!r}; expected one of "
                f"{_BUILTIN_ACTIONS} or a callable"
            )
        if probability is not None and not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        if every is not None and every < 1:
            raise ValueError("every must be >= 1")
        self.name = name
        self.action = action
        self.times = times
        self.every = every
        self.probability = probability
        self.after = after
        self._rng = rng if rng is not None else random.Random()
        #: How many times the instrumented site was reached while armed.
        self.hits = 0
        #: How many times the action actually ran.
        self.fires = 0

    def should_fire(self) -> bool:
        """Advance the hit counter and decide whether the action runs."""
        self.hits += 1
        if self.times is not None and self.fires >= self.times:
            return False
        eligible = self.hits - self.after
        if eligible < 1:
            return False
        if self.every is not None and eligible % self.every != 0:
            return False
        if (
            self.probability is not None
            and self._rng.random() >= self.probability
        ):
            return False
        self.fires += 1
        return True

    def run(self, ctx: Dict[str, Any]) -> Any:
        """Execute the action (the trigger already said yes)."""
        logger.debug("failpoint %s fired (fire #%d)", self.name, self.fires)
        if callable(self.action):
            return self.action(ctx)
        if self.action == ACTION_RAISE:
            raise InjectedFault(self.name)
        if self.action == ACTION_CRASH:
            raise SimulatedCrash(self.name)
        if self.action == ACTION_CORRUPT:
            data = ctx.get("data")
            if not isinstance(data, (bytes, bytearray)) or not data:
                raise InjectedFault(
                    self.name,
                    f"corrupt action at {self.name!r} received no bytes",
                )
            corrupted = bytearray(data)
            offset = self._rng.randrange(len(corrupted))
            flip = 1 + self._rng.randrange(255)  # never a no-op flip
            corrupted[offset] ^= flip
            return bytes(corrupted)
        return None  # ACTION_COUNT: observe only

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Failpoint({self.name!r}, action={self.action!r}, "
            f"hits={self.hits}, fires={self.fires})"
        )


class FailpointRegistry:
    """The process-wide collection of armed failpoints."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._points: Dict[str, Failpoint] = {}
        self._suspended = 0
        self.rng = random.Random()

    # -- arming ----------------------------------------------------------

    def seed(self, seed: int) -> None:
        """Reseed the shared RNG (probabilistic triggers, corruption)."""
        self.rng.seed(seed)

    def arm(
        self,
        name: str,
        action: "str | Callable[[Dict[str, Any]], Any]" = ACTION_RAISE,
        *,
        times: Optional[int] = None,
        every: Optional[int] = None,
        probability: Optional[float] = None,
        after: int = 0,
    ) -> Failpoint:
        """Arm (or re-arm) the failpoint ``name``; returns its handle.

        ``name`` must be declared in :data:`repro.faults.FAILPOINTS` —
        arming an undeclared (typo'd) name would build a chaos schedule
        that silently targets nothing, so it is rejected here instead of
        discovered never.
        """
        if not is_declared(name):
            hint = suggest(name)
            raise ValueError(
                f"failpoint {name!r} is not declared in the "
                "repro.faults.FAILPOINTS catalog"
                + (f"; did you mean {', '.join(map(repr, hint))}?"
                   if hint else "")
            )
        point = Failpoint(
            name, action, times=times, every=every,
            probability=probability, after=after, rng=self.rng,
        )
        with self._lock:
            self._points[name] = point
            self._refresh_active_locked()
        logger.info("armed failpoint %s (%s)", name, action)
        return point

    def disarm(self, name: str) -> None:
        with self._lock:
            self._points.pop(name, None)
            self._refresh_active_locked()

    def reset(self) -> None:
        """Disarm everything and clear any suspension."""
        with self._lock:
            self._points.clear()
            self._suspended = 0
            self._refresh_active_locked()

    def armed(self) -> List[str]:
        with self._lock:
            return sorted(self._points)

    def stats(self) -> Dict[str, Failpoint]:
        """Snapshot of armed failpoints by name (live handles)."""
        with self._lock:
            return dict(self._points)

    # -- suspension ------------------------------------------------------

    @contextmanager
    def suspended(self) -> Iterator[None]:
        """Temporarily disable every failpoint (re-entrant).

        The chaos harness uses this around *trusted-party* work (chain
        generation, the CI's maintenance run, oracle queries) so faults
        land only on the storage/ISP/RPC paths under test.
        """
        with self._lock:
            self._suspended += 1
            self._refresh_active_locked()
        try:
            yield
        finally:
            with self._lock:
                self._suspended -= 1
                self._refresh_active_locked()

    def _refresh_active_locked(self) -> None:
        global ACTIVE
        ACTIVE = bool(self._points) and self._suspended == 0

    # -- firing ----------------------------------------------------------

    def fire(self, name: str, ctx: Dict[str, Any]) -> Any:
        with self._lock:
            point = self._points.get(name)
            if point is None or self._suspended:
                return None
            fire_now = point.should_fire()
        if not fire_now:
            return None
        ctx.setdefault("name", name)
        return point.run(ctx)

    def mangle(self, name: str, data: bytes) -> bytes:
        """Pass ``data`` through the failpoint; corrupting actions may
        return a modified copy, every other action behaves as in
        :meth:`fire` (raising or observing)."""
        result = self.fire(name, {"data": data})
        if isinstance(result, (bytes, bytearray)):
            return bytes(result)
        return data


#: The process-wide registry used by every instrumented call site.
_REGISTRY = FailpointRegistry()


def get_registry() -> FailpointRegistry:
    return _REGISTRY


def seed(value: int) -> None:
    _REGISTRY.seed(value)


def arm(name: str, action="raise", **policy) -> Failpoint:
    return _REGISTRY.arm(name, action, **policy)


def disarm(name: str) -> None:
    _REGISTRY.disarm(name)


def reset() -> None:
    _REGISTRY.reset()


def suspended():
    return _REGISTRY.suspended()


def stats() -> Dict[str, Failpoint]:
    return _REGISTRY.stats()


def fire(name: str, **ctx: Any) -> Any:
    """Trigger the named failpoint, if armed.

    Call sites guard this behind ``if faults.ACTIVE:`` so the disabled
    path costs a single module-attribute read.
    """
    if not ACTIVE:
        return None
    return _REGISTRY.fire(name, ctx)


def mangle(name: str, data: bytes) -> bytes:
    """Route bytes through the named failpoint (corruption hook)."""
    if not ACTIVE:
        return data
    return _REGISTRY.mangle(name, data)
