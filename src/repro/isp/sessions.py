"""Shared session-table machinery for ISP-shaped servers.

:class:`SessionRegistry` owns the ``session_id -> session`` table that
both the single-node :class:`~repro.isp.server.IspServer` and the fleet
router (:class:`~repro.fleet.router.FleetIsp`) need: id allocation,
insert/remove with open/finalize metrics, the live-root sweep that the
post-publish prune uses, and predicate-based pruning of abandoned
sessions.  Extracting it keeps the prune/metrics logic in one place
instead of duplicated per process kind.

Concurrency contract (same as the table it replaces): the lock guards
*mutation and iteration*; single-key reads by session id stay lock-free
on purpose (atomic under the GIL, and a stale lookup at worst observes a
just-removed id — the same "unknown session" error the caller reports
anyway).  See DESIGN.md "Concurrency model".

Sessions stored here only need a ``session_id`` attribute; ``root`` is
required by :meth:`live_roots` (the router's sessions, which pin no
local root, simply never call it).
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional

from repro.crypto.hashing import Digest
from repro.obs import metrics as obs
from repro.sanitize import runtime as san
from repro.sanitize.runtime import SanLock


class SessionRegistry:
    """A lock-guarded session table with open/finalize accounting.

    ``lock_name`` names the :class:`SanLock` in the sanitizer's
    lock-order graph; ``scope`` prefixes the emitted metric names
    (``{scope}.session.open`` / ``.finalize`` / ``.pruned``), which must
    be declared in :mod:`repro.obs.catalog`.
    """

    def __init__(self, lock_name: str, scope: str) -> None:
        self._lock = SanLock(lock_name)
        self._lock_name = lock_name
        self._scope = scope
        self._sessions: Dict[int, object] = {}  # repro: guarded-by(_lock, writes)
        self._ids = itertools.count(1)

    @property
    def table(self) -> Dict[int, object]:
        """The raw table (lock-free single-key reads; test seam)."""
        return self._sessions

    def __len__(self) -> int:
        return len(self._sessions)

    def next_id(self) -> int:
        return next(self._ids)

    def _track_write(self) -> None:
        if san.ACTIVE:
            san.track(self, "_sessions", guard=self._lock_name,
                      writes_only=True)
            san.track_write(self, "_sessions")

    def insert(self, session) -> None:
        """Register an opened session under its ``session_id``."""
        with self._lock:
            self._track_write()
            self._sessions[session.session_id] = session
        if obs.ACTIVE:
            # Per-server prefix; the ".session.open" family is declared
            # in catalog.DYNAMIC_SCOPE_SUFFIXES and every expansion is
            # a concrete SCOPES entry enforced at emit time.
            obs.inc(f"{self._scope}.session.open")

    def get(self, session_id: int):
        """Lock-free lookup; ``None`` for unknown (or just-closed) ids."""
        return self._sessions.get(session_id)

    def remove(self, session_id: int):
        """Close a session; returns it, or ``None`` if already closed."""
        with self._lock:
            self._track_write()
            session = self._sessions.pop(session_id, None)
        if session is not None and obs.ACTIVE:
            obs.inc(f"{self._scope}.session.finalize")
        return session

    def live_roots(self) -> List[Digest]:
        """Snapshot roots pinned by in-flight sessions (prune keep-set).

        Iterating the table is not a single atomic lookup — a handler
        thread inserting mid-iteration would blow up with "dict changed
        size" — so the sweep runs under the lock.
        """
        with self._lock:
            return [s.root for s in self._sessions.values()]

    def prune(self, stale: Callable[[object], bool]) -> int:
        """Drop every session ``stale`` selects; returns the count.

        Used by long-lived routers to sweep sessions whose client
        vanished without finalizing (a dropped connection strands the
        per-shard sessions underneath, which would otherwise pin their
        snapshots forever).
        """
        with self._lock:
            doomed = [
                sid for sid, session in self._sessions.items()
                if stale(session)
            ]
            if doomed:
                self._track_write()
                for sid in doomed:
                    del self._sessions[sid]
        if doomed and obs.ACTIVE:
            obs.add(f"{self._scope}.session.pruned", len(doomed))
        return len(doomed)


def registry_for_isp() -> SessionRegistry:
    """The single-node ISP's registry (canonical lock/scope names)."""
    return SessionRegistry("isp.sessions", "isp")


__all__ = ["SessionRegistry", "registry_for_isp"]
