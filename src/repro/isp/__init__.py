"""Indexing Service Provider (ISP).

The untrusted party that stores the indexed multi-chain database and
serves pages, freshness checks, certificates, and consolidated VOs to
query clients (Figure 4, steps 3 and 7-10 of the paper).
"""

from repro.isp.server import IspServer, IspSession
from repro.isp.vo import VOBuilder

__all__ = ["IspServer", "IspSession", "VOBuilder"]
