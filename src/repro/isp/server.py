"""The ISP server.

Maintains a replica of the authenticated database (synchronized
deterministically from the V2FS CI's write batches, per the paper's
footnote on non-deterministic engines) and serves query clients:

* ``get_certificate`` — the latest ``C_V2FS`` (step 7);
* ``open_session`` — pins a query to the certificate's snapshot root, so
  concurrent updates never break an in-flight query (the ADS keeps the
  previous version readable — the paper's MVCC);
* ``get_file_meta`` / ``get_page`` — metadata and page service (steps
  8-9);
* ``validate_path`` — the ISP side of Algorithm 5's freshness check;
* ``finalize_session`` — the consolidated VO (step 10).

The ISP is *untrusted*: nothing here is assumed correct by the client,
which verifies every response against the certificate.  Subclasses in the
test suite override methods to model malicious behaviour.
"""

from __future__ import annotations

import logging
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.core.certificate import V2fsCertificate
from repro.crypto.hashing import Digest
from repro.errors import NetworkError, ReproError, StorageError
from repro.faults import registry as faults
from repro.isp.sessions import registry_for_isp
from repro.isp.vo import VOBuilder, build_batch
from repro.merkle import page_tree
from repro.merkle.ads import V2fsAds
from repro.merkle.proof import AdsProof
from repro.obs import metrics as obs

logger = logging.getLogger("repro.isp")


class IspSession:
    """Server-side state of one query: pinned root + claim accumulator."""

    def __init__(self, session_id: int, ads: V2fsAds, root: Digest,
                 certificate: V2fsCertificate) -> None:
        self.session_id = session_id
        self.root = root
        self.certificate = certificate
        self.vo = VOBuilder(ads, root)


#: validate_path responses: a confirmed-fresh node, or the updated page.
FreshMatch = Tuple[str, int, int, Digest]   # ("fresh", level, index, digest)
PageReply = Tuple[str, bytes]               # ("page", data)


class IspServer:
    """The indexing service provider."""

    def __init__(self) -> None:
        self.ads = V2fsAds()
        self.root = self.ads.root
        self.certificate: Optional[V2fsCertificate] = None
        # The session table (lock discipline, prune sweep, and the
        # open/finalize metrics) lives in a SessionRegistry shared with
        # the fleet router.  See DESIGN.md "Concurrency model".
        self.sessions = registry_for_isp()
        self._previous_root: Optional[Digest] = None

    @property
    def _sessions(self) -> Dict[int, "IspSession"]:
        """Raw session table (kept as a seam for adversarial subclasses
        in the test suite; production code goes through ``sessions``)."""
        return self.sessions.table  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Synchronization from the CI (step 3 / footnote 1)
    # ------------------------------------------------------------------

    def sync_update(
        self,
        writes: Dict[str, Dict[int, bytes]],
        new_sizes: Dict[str, int],
        certificate: V2fsCertificate,
    ) -> None:
        """Apply the CI's write batch and adopt the new certificate.

        Transactional: *stage → verify → sync → publish → prune*.  The
        staged nodes are content-addressed, so a failure before the
        publish point leaves only unreferenced garbage and the served
        root/certificate untouched — the caller may simply retry the
        same batch.  The node store is synced *before* the root becomes
        visible (write-ahead ordering): a crash right after publish must
        never expose a root whose nodes did not reach disk.

        Failpoints: ``isp.sync_update.pre`` (before staging),
        ``isp.sync_update.pre_publish`` (staged and verified, not yet
        durable or visible).
        """
        if faults.ACTIVE:
            faults.fire("isp.sync_update.pre", version=certificate.version)
        if writes:
            new_root = self._apply_writes(writes, new_sizes)
        else:
            new_root = self.root
        if new_root != certificate.ads_root:
            raise StorageError(
                "synchronized update does not match the certified root"
            )
        if faults.ACTIVE:
            faults.fire(
                "isp.sync_update.pre_publish", version=certificate.version
            )
        self.ads.store.sync()
        # Publish point — plain attribute writes, nothing fallible left.
        self._previous_root = self.root
        self.root = new_root
        self.certificate = certificate
        if obs.ACTIVE:
            obs.inc("isp.sync_update")
            obs.event("isp.sync_update", version=certificate.version,
                      files=len(writes))
        # Old pages stay readable for in-flight sessions on the previous
        # root; everything older is pruned (the paper's snapshot cleanup).
        # Best-effort: the update is already published, so a pruning
        # failure only retains superseded nodes.
        live = [self.root]
        if self._previous_root is not None:
            live.append(self._previous_root)
        live.extend(self.sessions.live_roots())
        try:
            self.ads.prune(live)
        except (StorageError, OSError):
            # Only the expected operational failures are absorbed; a
            # VerificationError (or anything unforeseen) propagates.
            logger.exception(
                "post-publish prune failed; superseded nodes retained"
            )

    def _apply_writes(
        self,
        writes: Mapping[str, Mapping[int, bytes]],
        new_sizes: Mapping[str, int],
    ) -> Digest:
        """Fold one write batch into the ADS (overridden by fleet shards
        to store page data for owned paths only)."""
        return self.ads.apply_writes(self.root, writes, new_sizes)

    # ------------------------------------------------------------------
    # Client-facing service
    # ------------------------------------------------------------------

    # repro: taint-source
    def get_certificate(self) -> V2fsCertificate:
        if self.certificate is None:
            raise NetworkError("ISP has no certificate yet")
        return self.certificate

    def open_session(self, expected_version: Optional[int] = None) -> int:
        """Open a query session pinned to the current snapshot root.

        ``expected_version`` lets a client demand the certificate version
        it just validated: if an update landed in between (a real race
        once the ISP serves concurrent clients over RPC), the mismatch is
        reported *before* the session pins a root the client cannot
        verify against, and the client refetches the certificate instead
        of failing the final VO check.
        """
        certificate = self.get_certificate()
        if (
            expected_version is not None
            and certificate.version != expected_version
        ):
            raise NetworkError(
                f"certificate superseded (now version "
                f"{certificate.version}, client validated "
                f"{expected_version}); refetch and retry"
            )
        session = IspSession(
            self.sessions.next_id(), self.ads, self.root, certificate
        )
        self.sessions.insert(session)
        return session.session_id

    def _session(self, session_id: int) -> IspSession:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise NetworkError(f"unknown session {session_id}") from None

    # repro: taint-source
    def get_file_meta(
        self, session_id: int, path: str
    ) -> Tuple[bool, int, int]:
        """Return (exists, size, page_count) under the session snapshot."""
        return self._get_file_meta(self.ads, session_id, path)

    def _get_file_meta(
        self, ads: V2fsAds, session_id: int, path: str
    ) -> Tuple[bool, int, int]:
        session = self._session(session_id)
        if obs.ACTIVE:
            obs.inc("isp.get_file_meta")
        if not ads.file_exists(session.root, path):
            return False, 0, 0
        node = ads.file_node(session.root, path)
        session.vo.add_file(path)
        return True, node.size, node.page_count

    # repro: taint-source
    def get_page(self, session_id: int, path: str, page_id: int) -> bytes:
        return self._get_page(self.ads, session_id, path, page_id)

    def _get_page(
        self, ads: V2fsAds, session_id: int, path: str, page_id: int
    ) -> bytes:
        session = self._session(session_id)
        if obs.ACTIVE:
            obs.inc("isp.get_page")
        page = ads.get_page(session.root, path, page_id)
        session.vo.add_page(path, page_id)
        return page

    # repro: taint-source
    def validate_path(
        self,
        session_id: int,
        path: str,
        page_id: int,
        digs_path: List[Tuple[int, int, Digest]],
    ) -> Union[FreshMatch, PageReply]:
        """Algorithm 5, ISP side.

        ``digs_path`` lists (level, index, digest) top-down for the
        requested page's cached ancestors.  The first digest matching the
        current ADS confirms freshness of its whole subtree; otherwise the
        current page is returned.
        """
        return self._validate_path(
            self.ads, session_id, path, page_id, digs_path
        )

    def _validate_path(
        self,
        ads: V2fsAds,
        session_id: int,
        path: str,
        page_id: int,
        digs_path: List[Tuple[int, int, Digest]],
    ) -> Union[FreshMatch, PageReply]:
        session = self._session(session_id)
        node = ads.file_node(session.root, path)
        height = page_tree.height_for(node.page_count)
        for level, index, digest in digs_path:
            if level > height:
                continue
            current = page_tree.node_digest(
                ads.store, node.tree_root, node.page_count,
                level, index,
            )
            if current == digest:
                session.vo.add_node(path, level, index)
                if obs.ACTIVE:
                    obs.inc("isp.validate_path.fresh")
                return ("fresh", level, index, digest)
        page = ads.get_page(session.root, path, page_id)
        session.vo.add_page(path, page_id)
        if obs.ACTIVE:
            obs.inc("isp.validate_path.page")
        return ("page", page)

    # repro: taint-source
    def finalize_session(self, session_id: int) -> AdsProof:
        """Build and return the consolidated VO; closes the session."""
        session = self.sessions.remove(session_id)
        if session is None:
            # E.g. a client retrying a finalize whose first reply was
            # lost in transit: the session is already closed.
            raise NetworkError(f"unknown session {session_id}")
        vo = session.vo.build()
        if obs.ACTIVE:
            obs.observe("isp.vo.bytes", vo.byte_size())
        return vo

    # ------------------------------------------------------------------
    # Batched service (shared-traversal snapshot reads)
    # ------------------------------------------------------------------

    #: Operations :meth:`serve_batch` accepts, by the public method they
    #: mirror.  All are data-plane snapshot reads (plus finalize, which
    #: only *renders* reads); control-plane operations (open_session,
    #: get_certificate) never batch.
    BATCH_OPS = frozenset({
        "get_file_meta", "get_page", "validate_path", "finalize_session",
    })

    # repro: taint-source
    def serve_batch(self, items: List[Tuple[str, tuple]]) -> List[object]:
        """Serve many decoded data-plane requests off one shared view.

        ``items`` is a list of ``(op, args)`` pairs with ``op`` in
        :data:`BATCH_OPS` and ``args`` exactly the public method's
        arguments.  Every read in the batch — page-tree walks, trie
        lookups, and the VO renders of any ``finalize_session`` items —
        goes through a single :meth:`~repro.merkle.ads.V2fsAds.read_view`,
        so requests pinned to the same snapshot share each subtree fetch
        (one Merkle traversal serves many requests).

        Returns one result per item *in order*; an item that failed
        holds its :class:`~repro.errors.ReproError` instance instead, so
        one bad request never poisons its batchmates.  Results and
        rendered proof bytes are identical to calling the public methods
        one at a time (the batching invariant; see
        :func:`repro.isp.vo.build_batch`).
        """
        view = self.ads.read_view()
        results: List[object] = [None] * len(items)
        finals: List[Tuple[int, IspSession]] = []
        for slot, (op, args) in enumerate(items):
            try:
                if op == "get_page":
                    results[slot] = self._get_page(view, *args)
                elif op == "get_file_meta":
                    results[slot] = self._get_file_meta(view, *args)
                elif op == "validate_path":
                    results[slot] = self._validate_path(view, *args)
                elif op == "finalize_session":
                    session = self.sessions.remove(*args)
                    if session is None:
                        raise NetworkError(f"unknown session {args[0]}")
                    finals.append((slot, session))
                else:
                    raise NetworkError(f"unbatchable operation {op!r}")
            except ReproError as error:
                results[slot] = error
        if finals:
            builders = [session.vo for _, session in finals]
            try:
                proofs: List[object] = list(build_batch(builders, ads=view))
            except ReproError:
                # Isolate the failing session instead of failing the
                # whole group: re-render one by one, capturing per-item.
                proofs = []
                for builder in builders:
                    try:
                        proofs.append(builder.build(view))
                    except ReproError as error:
                        proofs.append(error)
            for (slot, _session), proof in zip(finals, proofs):
                results[slot] = proof
                if obs.ACTIVE and isinstance(proof, AdsProof):
                    obs.observe("isp.vo.bytes", proof.byte_size())
        if obs.ACTIVE:
            obs.add("isp.batch.requests", len(items))
            obs.add("isp.batch.node_hits", view.store.hits)
        return results
