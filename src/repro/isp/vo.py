"""Verification-object builder.

Per the paper, the ISP does not ship one Merkle proof per page; it
accumulates everything a query touched and emits a single consolidated VO
in the finalize phase.  The :class:`VOBuilder` collects three kinds of
claims and renders them into one :class:`~repro.merkle.proof.AdsProof`:

* **page claims** — pages transmitted to the client;
* **node claims** — internal ADS nodes whose digests the ISP confirmed
  during inter-query-cache freshness checks (Algorithm 5, line 22);
* **touched files** — files whose metadata the client used; their
  authenticated (size, page_count) ride along in the trie skeleton so a
  stale cached file length can never go unnoticed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.crypto.hashing import Digest
from repro.merkle.ads import V2fsAds
from repro.merkle.proof import AdsProof
from repro.obs import metrics as obs


class VOBuilder:
    """Accumulates claims for one query session."""

    def __init__(self, ads: V2fsAds, root: Digest) -> None:
        self._ads = ads
        self._root = root
        self.page_keys: Set[Tuple[str, int]] = set()
        self.node_keys: Set[Tuple[str, int, int]] = set()
        self.touched_files: Set[str] = set()

    def add_page(self, path: str, page_id: int) -> None:
        self.page_keys.add((path, page_id))
        self.touched_files.add(path)

    def add_node(self, path: str, level: int, index: int) -> None:
        self.node_keys.add((path, level, index))
        self.touched_files.add(path)

    def add_file(self, path: str) -> None:
        self.touched_files.add(path)

    def build(self, ads: Optional[V2fsAds] = None) -> AdsProof:
        """Render the consolidated VO.

        ``ads`` lets the batched serving path substitute a shared
        :meth:`~repro.merkle.ads.V2fsAds.read_view` of the same ADS, so
        many sessions' VOs are rendered off one traversal cache.  The
        view runs the identical proof algorithms, so the rendered bytes
        do not depend on which facade was used.
        """
        if ads is None:
            ads = self._ads
        if obs.ACTIVE:
            obs.observe("isp.vo.pages", len(self.page_keys))
            obs.observe("isp.vo.nodes", len(self.node_keys))
        proof = ads.gen_read_proof(
            self._root, sorted(self.page_keys), sorted(self.node_keys)
        )
        # Files touched only through metadata (or fully VBF-fresh caches)
        # still need their trie entry in the skeleton.
        missing = self.touched_files - {p for p, _ in self.page_keys} - {
            p for p, _, _ in self.node_keys
        }
        if missing:
            from repro.merkle.proof import gen_trie_proof

            all_files = sorted(
                {p for p, _ in self.page_keys}
                | {p for p, _, _ in self.node_keys}
                | self.touched_files
            )
            proof = AdsProof(
                trie=gen_trie_proof(ads.store, self._root, all_files),
                files=proof.files,
            )
        return proof


def build_batch(
    builders: List[VOBuilder],
    ads: Optional[V2fsAds] = None,
) -> List[AdsProof]:
    """Render many sessions' consolidated VOs with shared subtree reads.

    Groups the builders by their underlying ADS and renders each group
    through one :meth:`~repro.merkle.ads.V2fsAds.read_view`, so sessions
    pinned to the same snapshot (the common case under concurrent load:
    every in-flight query holds the current certificate's root) fetch
    each shared trie/page-tree node once instead of once per session.
    Pass ``ads`` to reuse a view the caller already holds — e.g. the
    batch view :meth:`~repro.isp.server.IspServer.serve_batch` serves
    page reads from — and the VO traversals join its memo too.

    **Batching invariant:** the returned proofs are byte-identical to
    calling ``builder.build()`` on each builder unbatched; the memo only
    deduplicates store fetches, never alters traversal or encoding
    order.  ``tests/test_serve.py`` and the CI ``serve`` job gate this.
    """
    if ads is not None:
        return [builder.build(ads) for builder in builders]
    views: Dict[int, V2fsAds] = {}
    proofs: List[AdsProof] = []
    for builder in builders:
        view = views.get(id(builder._ads))
        if view is None:
            view = builder._ads.read_view()
            views[id(builder._ads)] = view
        proofs.append(builder.build(view))
    return proofs
