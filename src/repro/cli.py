"""Command-line interface: ``python -m repro <command>``.

Four commands cover the zero-to-aha path:

* ``demo`` — assemble the full five-party system, run a verified
  multi-chain query, and show a tampering ISP being rejected;
* ``query`` — run ad-hoc SQL under a chosen cache mode, printing the
  verification cost profile; against a freshly built local system by
  default, or against a remote ISP with ``--connect host:port``;
* ``serve`` — build a system and serve its ISP over TCP to remote
  verifying clients (the paper's separate-machine testbed topology);
* ``fleet`` — serve the same system as a sharded, replicated fleet:
  N shard primaries + R read replicas behind a proof-stitching router
  (:mod:`repro.fleet`) that unmodified clients verify against;
* ``experiment`` — regenerate one of the paper's tables/figures by name;
* ``chaos`` — run the seeded fault-injection/recovery harness
  (:mod:`repro.faults.chaos`) and print its counters;
* ``metrics`` — inspect the :mod:`repro.obs` layer: list the scope
  catalog, validate an exported document, or run a small instrumented
  workload and dump its counters;
* ``lint`` — run the :mod:`repro.analysis` invariant checker over the
  source tree (``--strict`` is the CI gate);
* ``sanitize`` — run the concurrent serving workload with the
  :mod:`repro.sanitize` runtime armed and fail on any data-race or
  lock-order report.

``serve`` and ``chaos`` accept ``--fault-schedule``/``--fault-seed`` to
arm named failpoints (e.g.
``--fault-schedule 'rpc.server.drop=raise@p:0.1'``).  ``query``,
``serve``, ``chaos``, ``experiment``, and ``metrics`` accept
``--metrics-out FILE`` to export the process-wide metrics registry as
JSON on exit.
"""

from __future__ import annotations

import argparse
import importlib
import sys
import threading
from typing import List, Optional

#: Set by tests (or signal handlers) to make a running ``serve`` return.
_serve_shutdown = threading.Event()

EXPERIMENTS = {
    "table1": "repro.experiments.table1",
    "table2": "repro.experiments.table2",
    "fig8": "repro.experiments.fig8",
    "fig9to11": "repro.experiments.fig9to11",
    "fig12": "repro.experiments.fig12",
    "fig13": "repro.experiments.fig13",
    "fig14to16": "repro.experiments.fig14to16",
    "fig17": "repro.experiments.fig17",
}


def _build_system(hours: int, txs_per_block: int):
    from repro.core.system import SystemConfig, V2FSSystem

    print(f"building system: {hours}h of history, "
          f"{txs_per_block} txs/block ...", file=sys.stderr)
    system = V2FSSystem(SystemConfig(txs_per_block=txs_per_block))
    system.advance_all(hours)
    return system


def cmd_demo(args: argparse.Namespace) -> int:
    from repro.client.vfs import QueryMode
    from repro.errors import ReproError

    system = _build_system(args.hours, args.txs_per_block)
    client = system.make_client(QueryMode.INTER_VBF)
    sql = (
        "SELECT COUNT(*) AS txs, SUM(fee) FROM btc_transactions "
        "UNION ALL SELECT COUNT(*), SUM(gas_used) FROM eth_transactions"
    )
    result = client.query(sql)
    print("verified multi-chain query:")
    for (count, total), chain in zip(result.rows, ("btc", "eth")):
        print(f"  {chain}: {count} transactions, aggregate {total}")
    print(f"  VO {result.stats.vo_bytes}B, "
          f"latency {result.stats.latency_s * 1000:.1f}ms")
    honest = system.isp.get_page

    def tampering(session_id, path, page_id):
        page = honest(session_id, path, page_id)
        if path.endswith(".tbl"):
            page = page[:-1] + bytes([page[-1] ^ 0xFF])
        return page

    system.isp.get_page = tampering
    try:
        system.make_client(QueryMode.BASELINE).query(
            "SELECT COUNT(*) FROM eth_transactions"
        )
        print("!!! tampering went unnoticed")
        return 1
    except ReproError as error:
        print(f"tampering ISP rejected: {type(error).__name__}")
    return 0


def _parse_address(text: str) -> "tuple[str, int]":
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"--connect expects host:port, got {text!r}")
    return host, int(port)


def _write_metrics(args: argparse.Namespace) -> None:
    """Export the process-wide registry if ``--metrics-out`` was given."""
    path = getattr(args, "metrics_out", None)
    if path:
        from repro.obs import REGISTRY

        REGISTRY.write_json(path)
        print(f"metrics written to {path}", file=sys.stderr)


def cmd_query(args: argparse.Namespace) -> int:
    from repro.client.vfs import QueryMode

    if args.connect:
        from repro.errors import RpcError
        from repro.rpc import connect_client

        host, port = _parse_address(args.connect)
        print(f"connecting to ISP at {host}:{port} ...", file=sys.stderr)
        try:
            client = connect_client(host, port, mode=QueryMode(args.mode))
        except RpcError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    else:
        system = _build_system(args.hours, args.txs_per_block)
        client = system.make_client(QueryMode(args.mode))
    sql = args.sql if args.sql else sys.stdin.read()
    result = client.query(sql)
    if result.columns:
        print("  ".join(result.columns))
    for row in result.rows:
        print("  ".join(str(v) for v in row))
    stats = result.stats
    print(
        f"-- verified: {stats.page_requests} page requests, "
        f"{stats.check_requests} checks, VO {stats.vo_bytes}B, "
        f"latency {stats.latency_s * 1000:.1f}ms",
        file=sys.stderr,
    )
    _write_metrics(args)
    return 0


def _arm_faults(args: argparse.Namespace) -> None:
    """Arm the ``--fault-schedule`` (if any) with the ``--fault-seed``."""
    if getattr(args, "fault_schedule", None):
        from repro.faults import registry as faults
        from repro.faults.chaos import apply_schedule

        faults.seed(args.fault_seed)
        armed = apply_schedule(args.fault_schedule)
        print(f"armed failpoints: {', '.join(armed)}", file=sys.stderr)


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.rpc import serve_system

    system = _build_system(args.hours, args.txs_per_block)
    _arm_faults(args)
    if args.use_async:
        from repro.serve import AsyncIspServer

        server = serve_system(
            system, host=args.host, port=args.port,
            server_class=AsyncIspServer,
        )
        server.workers = args.serve_workers
    else:
        server = serve_system(system, host=args.host, port=args.port)
    _serve_shutdown.clear()
    with server:
        host, port = server.address
        flavor = "async " if args.use_async else ""
        print(f"serving ISP ({flavor}server) at {host}:{port} "
              f"(query with: python -m repro query --connect {host}:{port})",
              flush=True)
        if args.port_file:
            with open(args.port_file, "w", encoding="utf-8") as handle:
                handle.write(f"{host}:{port}\n")
        try:
            _serve_shutdown.wait(timeout=args.serve_for)
        except KeyboardInterrupt:
            print("shutting down", file=sys.stderr)
    _write_metrics(args)
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    """Launch N shards + R replicas + a proof-stitching router."""
    from repro.fleet.lifecycle import Fleet

    if args.chaos is not None:
        # Failure-domain mode: run the named chaos scenario against a
        # freshly built fleet instead of serving one.
        from repro.faults.chaos import run_fleet_chaos

        scenario = None if args.chaos == "default" else args.chaos
        print(
            f"fleet chaos scenario {args.chaos!r}: "
            f"{args.shards} shard(s), {args.replicas} replica(s), "
            f"{args.chaos_steps} step(s), seed {args.fault_seed}",
            flush=True,
        )
        try:
            stats = run_fleet_chaos(
                args.fault_seed,
                steps=args.chaos_steps,
                shard_count=args.shards,
                replicas=args.replicas,
                schedule=args.fault_schedule,
                scenario=scenario,
            )
        except AssertionError as error:
            print(f"INVARIANT VIOLATED: {error}", file=sys.stderr)
            return 1
        print(f"  {stats.as_dict()}")
        print("all invariants held")
        _write_metrics(args)
        return 0

    system = _build_system(args.hours, args.txs_per_block)
    _arm_faults(args)
    fleet = Fleet(
        system,
        shard_count=args.shards,
        replicas=args.replicas,
        strategy=args.strategy,
        host=args.host,
    )
    _serve_shutdown.clear()
    with fleet:
        host, port = fleet.router_address
        print(
            f"fleet router at {host}:{port} — {args.shards} shard(s), "
            f"{args.replicas} replica(s), {args.strategy} partitioning "
            f"(query with: python -m repro query --connect {host}:{port})",
            flush=True,
        )
        for shard_id in sorted(fleet.shards):
            shard_host, shard_port = \
                fleet._shard_servers[shard_id].address
            labels = [label for label, _ in fleet.replicas[shard_id]]
            extra = f" (+ replicas: {', '.join(labels)})" if labels else ""
            print(f"  shard {shard_id}: {shard_host}:{shard_port}{extra}",
                  file=sys.stderr)
        if args.port_file:
            with open(args.port_file, "w", encoding="utf-8") as handle:
                handle.write(f"{host}:{port}\n")
        try:
            _serve_shutdown.wait(timeout=args.serve_for)
        except KeyboardInterrupt:
            print("shutting down fleet", file=sys.stderr)
    _write_metrics(args)
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    module = importlib.import_module(EXPERIMENTS[args.name])
    results = module.run()
    print(module.render(results))
    _write_metrics(args)
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults.chaos import (
        run_concurrent_chaos,
        run_fleet_chaos,
        run_pager_chaos,
        run_system_chaos,
    )

    failures = 0
    for seed in args.seeds:
        print(f"== chaos seed {seed} ==")
        try:
            if args.layer in ("system", "all"):
                stats = run_system_chaos(
                    seed,
                    steps=args.steps,
                    schedule=args.fault_schedule,
                    use_rpc=not args.no_rpc,
                )
                print(f"  system: {stats.as_dict()}")
            if args.layer in ("pager", "all"):
                stats = run_pager_chaos(seed, steps=args.steps)
                print(f"  pager:  {stats.as_dict()}")
            if args.layer in ("fleet", "all"):
                stats = run_fleet_chaos(
                    seed,
                    steps=min(args.steps, 60),
                    schedule=args.fault_schedule,
                    scenario=args.scenario,
                )
                print(f"  fleet:  {stats.as_dict()}")
            if args.layer in ("concurrent", "all"):
                res = run_concurrent_chaos(seed)
                print(f"  concurrent: queries_ok={res['queries_ok']} "
                      f"reports={len(res['reports'])}")
                if res["client_errors"] or res["reports"]:
                    failures += 1
                    for line in res["client_errors"] + res["reports"]:
                        print(f"  {line}", file=sys.stderr)
        except AssertionError as error:
            failures += 1
            print(f"  INVARIANT VIOLATED: {error}", file=sys.stderr)
    _write_metrics(args)
    if failures:
        print(f"{failures} seed(s) violated invariants", file=sys.stderr)
        return 1
    print("all invariants held")
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    from repro.obs import REGISTRY, SCOPES, validate_payload

    if args.list:
        width = max(len(name) for name in SCOPES)
        for name in sorted(SCOPES):
            print(f"{name.ljust(width)}  {SCOPES[name]}")
        return 0
    if args.validate:
        import json

        with open(args.validate, encoding="utf-8") as handle:
            payload = json.load(handle)
        problems = validate_payload(payload)
        if problems:
            for problem in problems:
                print(f"invalid: {problem}", file=sys.stderr)
            return 1
        print(f"{args.validate}: valid "
              f"({len(payload.get('counters', {}))} counters)")
        return 0
    # Default: run one small instrumented workload, dump the counters.
    from repro.client.vfs import QueryMode

    system = _build_system(args.hours, args.txs_per_block)
    client = system.make_client(QueryMode(args.mode))
    client.query("SELECT COUNT(*) FROM eth_transactions")
    client.query("SELECT COUNT(*), SUM(fee) FROM btc_transactions")
    payload = REGISTRY.payload()
    width = max(len(name) for name in payload["counters"] or [""])
    for name, value in sorted(payload["counters"].items()):
        shown = int(value) if float(value).is_integer() else value
        print(f"{name.ljust(width)}  {shown}")
    if args.trace_out:
        REGISTRY.trace.write_jsonl(args.trace_out)
        print(f"trace written to {args.trace_out}", file=sys.stderr)
    _write_metrics(args)
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import run

    return run(args)


def cmd_sanitize(args: argparse.Namespace) -> int:
    """Armed concurrency stress: exit non-zero on any sanitizer report."""
    from repro.faults.chaos import run_concurrent_chaos

    failures = 0
    for seed in args.seeds:
        print(f"== sanitize seed {seed} ==")
        result = run_concurrent_chaos(
            seed,
            clients=args.clients,
            queries_per_client=args.queries,
            ingest_blocks=args.blocks,
            armed=not args.disarmed,
        )
        print(f"  queries_ok={result['queries_ok']} "
              f"reports={len(result['reports'])}")
        for error in result["client_errors"]:
            failures += 1
            print(f"  CLIENT ERROR: {error}", file=sys.stderr)
        for report in result["reports"]:
            failures += 1
            print(report, file=sys.stderr)
    if failures:
        print(f"{failures} problem(s) found", file=sys.stderr)
        return 1
    print("sanitizer clean: no races, no lock-order inversions")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="V2FS (ICDE 2024) reproduction command line",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser("demo", help="end-to-end demo")
    demo.add_argument("--hours", type=int, default=4)
    demo.add_argument("--txs-per-block", type=int, default=8)
    demo.set_defaults(handler=cmd_demo)

    query = commands.add_parser(
        "query", help="run ad-hoc verified SQL on a fresh system"
    )
    query.add_argument("sql", nargs="?", help="SQL text (or stdin)")
    query.add_argument("--hours", type=int, default=6,
                       help="hours of chain history to ingest")
    query.add_argument("--txs-per-block", type=int, default=8)
    query.add_argument(
        "--mode", default="inter+vbf",
        choices=["baseline", "intra", "inter", "inter+vbf"],
    )
    query.add_argument(
        "--connect", metavar="HOST:PORT", default=None,
        help="query a remote ISP served by 'repro serve' instead of "
             "building a local system",
    )
    query.add_argument("--metrics-out", metavar="FILE", default=None,
                       help="write the metrics registry as JSON on exit")
    query.set_defaults(handler=cmd_query)

    serve = commands.add_parser(
        "serve", help="serve a freshly built system's ISP over TCP"
    )
    serve.add_argument("--hours", type=int, default=6,
                       help="hours of chain history to ingest")
    serve.add_argument("--txs-per-block", type=int, default=8)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (0 picks a free one)")
    serve.add_argument("--port-file", default=None,
                       help="write the bound host:port to this file")
    serve.add_argument("--async", dest="use_async", action="store_true",
                       help="serve from the event-loop server "
                            "(pipelining + batched proof generation) "
                            "instead of a thread per connection")
    serve.add_argument("--serve-workers", type=int, default=8,
                       help="worker threads for the --async server")
    serve.add_argument("--serve-for", type=float, default=None,
                       help="stop after this many seconds (default: "
                            "serve until interrupted)")
    serve.add_argument("--fault-schedule", default=None,
                       help="arm failpoints before serving, e.g. "
                            "'rpc.server.drop=raise@p:0.1'")
    serve.add_argument("--fault-seed", type=int, default=0,
                       help="seed for probabilistic fault triggers")
    serve.add_argument("--metrics-out", metavar="FILE", default=None,
                       help="write the metrics registry as JSON on exit")
    serve.set_defaults(handler=cmd_serve)

    fleet = commands.add_parser(
        "fleet",
        help="serve a sharded, replicated ISP fleet behind a router",
        description=(
            "Build a system, split it across N shard primaries (each "
            "storing only its partition's pages while reproducing the "
            "full certified root), seed R read replicas through the "
            "replication log, and front everything with a "
            "proof-stitching router speaking the standard wire "
            "protocol.  Unmodified clients verify exactly as against "
            "a single ISP."
        ),
    )
    fleet.add_argument("--hours", type=int, default=6,
                       help="hours of chain history to ingest")
    fleet.add_argument("--txs-per-block", type=int, default=8)
    fleet.add_argument("--shards", type=int, default=4,
                       help="shard primaries (default: 4)")
    fleet.add_argument("--replicas", type=int, default=2,
                       help="read replicas, round-robin across shards")
    fleet.add_argument("--strategy", default="hash",
                       choices=["hash", "range"],
                       help="partitioning strategy")
    fleet.add_argument("--host", default="127.0.0.1")
    fleet.add_argument("--port-file", default=None,
                       help="write the router's host:port to this file")
    fleet.add_argument("--serve-for", type=float, default=None,
                       help="stop after this many seconds (default: "
                            "serve until interrupted)")
    fleet.add_argument("--fault-schedule", default=None,
                       help="arm failpoints before serving, e.g. "
                            "'fleet.replica.lag=raise@p:0.2'")
    fleet.add_argument("--chaos", metavar="SCENARIO", default=None,
                       choices=["default", "netsplit", "kill-primary",
                                "promote-lag"],
                       help="instead of serving, run the named "
                            "failure-domain chaos scenario against a "
                            "fresh fleet and report its invariants")
    fleet.add_argument("--chaos-steps", type=int, default=40,
                       help="steps for --chaos runs")
    fleet.add_argument("--fault-seed", type=int, default=0,
                       help="seed for probabilistic fault triggers")
    fleet.add_argument("--metrics-out", metavar="FILE", default=None,
                       help="write the metrics registry as JSON on exit")
    fleet.set_defaults(handler=cmd_fleet)

    experiment = commands.add_parser(
        "experiment", help="regenerate one paper table/figure"
    )
    experiment.add_argument("name", choices=sorted(EXPERIMENTS))
    experiment.add_argument("--metrics-out", metavar="FILE", default=None,
                            help="write the metrics registry as JSON "
                                 "on exit")
    experiment.set_defaults(handler=cmd_experiment)

    chaos = commands.add_parser(
        "chaos", help="run the seeded fault-injection/recovery harness"
    )
    chaos.add_argument("--seeds", type=int, nargs="+", default=[1, 2, 3],
                       help="chaos seeds to run (default: 1 2 3)")
    chaos.add_argument("--steps", type=int, default=200,
                       help="steps per seed")
    chaos.add_argument("--layer", default="all",
                       choices=["system", "pager", "fleet",
                                "concurrent", "all"],
                       help="which harness to run")
    chaos.add_argument("--no-rpc", action="store_true",
                       help="skip the RPC transport in system chaos")
    chaos.add_argument("--fault-schedule", default=None,
                       help="override the default fault schedule")
    chaos.add_argument("--scenario", default=None,
                       choices=["netsplit", "kill-primary",
                                "promote-lag"],
                       help="focus the fleet layer on one named "
                            "failure-domain scenario")
    chaos.add_argument("--fault-seed", type=int, default=0,
                       help="unused by chaos (the chaos seed reseeds "
                            "the registry); kept for flag symmetry")
    chaos.add_argument("--metrics-out", metavar="FILE", default=None,
                       help="write the metrics registry as JSON on exit")
    chaos.set_defaults(handler=cmd_chaos)

    metrics = commands.add_parser(
        "metrics",
        help="inspect the observability layer",
        description=(
            "List the declared metric scopes, validate an exported "
            "metrics document, or (default) run a small instrumented "
            "workload and dump every counter."
        ),
    )
    metrics.add_argument("--list", action="store_true",
                         help="print the scope catalog and exit")
    metrics.add_argument("--validate", metavar="FILE", default=None,
                         help="schema-check an exported metrics JSON "
                              "document; non-zero exit on problems")
    metrics.add_argument("--hours", type=int, default=3,
                         help="hours of history for the sample workload")
    metrics.add_argument("--txs-per-block", type=int, default=4)
    metrics.add_argument(
        "--mode", default="inter+vbf",
        choices=["baseline", "intra", "inter", "inter+vbf"],
    )
    metrics.add_argument("--metrics-out", metavar="FILE", default=None,
                         help="write the metrics registry as JSON")
    metrics.add_argument("--trace-out", metavar="FILE", default=None,
                         help="write buffered trace events as JSON lines")
    metrics.set_defaults(handler=cmd_metrics)

    lint = commands.add_parser(
        "lint",
        help="statically check the V2FS soundness invariants",
        description=(
            "Run the repro.analysis rules (vfs-boundary, crash-hygiene, "
            "proof-determinism, failpoint-names, obs-naming, "
            "typed-errors, lock-order, guarded-by) over the source tree."
        ),
    )
    from repro.analysis.cli import configure_parser as _configure_lint

    _configure_lint(lint)
    lint.set_defaults(handler=cmd_lint)

    sanitize = commands.add_parser(
        "sanitize",
        help="run the armed concurrency sanitizer stress workload",
        description=(
            "Serve a live-ingesting ISP to concurrent RPC clients with "
            "the repro.sanitize runtime armed (Eraser-style lock sets, "
            "vector-clock happens-before, lock-order graph); any "
            "data-race or lock-order report fails the run."
        ),
    )
    sanitize.add_argument("--seeds", type=int, nargs="+", default=[1],
                          help="workload seeds to run (default: 1)")
    sanitize.add_argument("--clients", type=int, default=4,
                          help="concurrent query clients")
    sanitize.add_argument("--queries", type=int, default=6,
                          help="queries per client")
    sanitize.add_argument("--blocks", type=int, default=6,
                          help="blocks ingested concurrently")
    sanitize.add_argument("--disarmed", action="store_true",
                          help="run the same workload without the "
                               "sanitizer (overhead/determinism "
                               "comparisons)")
    sanitize.set_defaults(handler=cmd_sanitize)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
