"""``repro.obs`` — unified metrics and tracing.

Counters, gauges, histograms and monotonic timers live in
:mod:`repro.obs.metrics` under scope names declared in
:mod:`repro.obs.catalog`; a bounded trace ring with JSON-lines export
lives in :mod:`repro.obs.trace`.  Instrumented code imports the module
façade (``from repro.obs import metrics as obs``); consumers import the
classes re-exported here.
"""

from repro.obs.catalog import SCOPES, declare, is_declared, suggest
from repro.obs.metrics import (
    REGISTRY,
    SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disable,
    enable,
    validate_payload,
)
from repro.obs.trace import TraceBuffer

__all__ = [
    "REGISTRY",
    "SCHEMA",
    "SCOPES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceBuffer",
    "declare",
    "disable",
    "enable",
    "is_declared",
    "suggest",
    "validate_payload",
]
