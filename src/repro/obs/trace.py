"""Bounded ring buffer of structured trace events.

The buffer keeps the most recent ``capacity`` events — instrumented code
emits freely and the buffer discards the oldest, so tracing costs O(1)
memory no matter how long the process runs.  Each event is a
``(timestamp, scope, fields)`` triple; timestamps come from
``time.monotonic()`` so event spacing is meaningful even if the wall
clock steps.

Export is JSON-lines (one event per line), the format every trace
viewer and ``jq`` pipeline ingests without a schema.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Dict, Iterator, List, Tuple

TraceEvent = Tuple[float, str, Dict[str, Any]]

DEFAULT_CAPACITY = 4096


class TraceBuffer:
    """A fixed-capacity ring of trace events."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("trace capacity must be positive")
        self.capacity = capacity
        self._events: "deque[TraceEvent]" = deque(maxlen=capacity)
        #: Total events ever emitted (so a reader can tell how many the
        #: ring discarded: ``emitted - len(buffer)``).
        self.emitted = 0

    def emit(self, timestamp: float, scope: str,
             fields: Dict[str, Any]) -> None:
        self._events.append((timestamp, scope, fields))
        self.emitted += 1

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(tuple(self._events))

    def clear(self) -> None:
        self._events.clear()

    def events(self) -> List[TraceEvent]:
        return list(self._events)

    # -- JSON-lines export ---------------------------------------------

    def to_jsonl(self) -> str:
        """The buffered events, one JSON object per line."""
        lines = []
        for timestamp, scope, fields in self._events:
            record = {"ts": round(timestamp, 6), "scope": scope}
            record.update(fields)
            lines.append(json.dumps(record, sort_keys=True, default=repr))
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())
