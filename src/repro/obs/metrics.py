"""Process-wide metrics registry: counters, gauges, histograms, timers.

Every count the paper's figures are built from — pages requested, VO
bytes shipped, cache hits, OCalls charged — flows through one
:class:`MetricsRegistry` under a name declared in
:mod:`repro.obs.catalog`.  Experiment scripts read deltas of the same
registry the production code writes, so a figure can never drift from
the instrumentation it claims to summarize.

Usage mirrors the failpoint registry::

    from repro.obs import metrics as obs

    obs.inc("cache.inter.hit")              # counter += 1
    obs.add("client.vo.bytes", vo_bytes)    # counter += n
    obs.observe("isp.vo.bytes", vo_bytes)   # histogram sample
    obs.set_gauge("store.nodes", count)     # last-value gauge
    with obs.timed("client.query.latency_s"):
        ...                                 # monotonic timer -> histogram
    obs.event("isp.sync_update", version=3) # ring-buffer trace event

Hot paths guard with ``if obs.ACTIVE:`` exactly like ``faults.ACTIVE``;
with the registry disabled every entry point returns before allocating
anything, so instrumentation left in place costs one attribute load and
one branch.  Counter and histogram updates take a per-instrument
``threading.Lock``: RPC handler threads and ``sync_update`` ingestion
record into the same instruments concurrently (Fig. 13b), and a
read-modify-write under the GIL can still lose increments between
bytecodes.  The instrument *map* is guarded by the registry's
:class:`~repro.sanitize.runtime.SanLock` for writes only — steady-state
lookups are lock-free dict reads, which is safe because instruments are
created once and never replaced (see the ``guarded-by`` annotation the
static analyzer enforces).
"""

from __future__ import annotations

import json
import time
from threading import Lock
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs import catalog
from repro.obs.trace import TraceBuffer
from repro.sanitize import runtime as san
from repro.sanitize.runtime import SanLock

#: Fast module-level gate mirroring the process-wide registry's enabled
#: flag (kept in sync by :func:`enable`/:func:`disable`).
ACTIVE = True

#: Schema tag stamped into every exported payload.
SCHEMA = "repro.obs/v1"

#: Default histogram boundaries for byte/count-valued samples.
SIZE_BUCKETS: Tuple[float, ...] = (
    64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304,
)

#: Default histogram boundaries for second-valued samples (timers).
TIME_BUCKETS: Tuple[float, ...] = (
    1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0, 60.0,
)


def _check_declared(name: str) -> None:
    if not catalog.is_declared(name):
        hint = catalog.suggest(name)
        raise ValueError(
            f"metric scope {name!r} is not declared in "
            "repro.obs.catalog.SCOPES"
            + (f" (did you mean {hint[0]!r}?)" if hint else "")
        )


class Counter:
    """A monotonically increasing count (float-valued for seconds)."""

    __slots__ = ("name", "value", "_lock")
    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0
        self._lock = Lock()

    def inc(self, value: float = 1) -> None:
        # += on a float attribute is LOAD/ADD/STORE — three bytecodes a
        # preempting handler thread can interleave with, losing counts.
        with self._lock:
            self.value += value


class Gauge:
    """A last-value-wins measurement.

    ``set`` is a single attribute store (one bytecode, atomic under the
    GIL) and last-value-wins semantics make interleavings benign, so
    gauges carry no lock.
    """

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-boundary bucketed distribution with count and sum.

    ``buckets[i]`` counts samples ``<= boundaries[i]``; samples above
    the last boundary land in ``overflow``.  Boundaries are fixed at
    creation, so merged or diffed snapshots always line up.
    """

    __slots__ = ("name", "boundaries", "buckets", "overflow",
                 "count", "total", "_lock")
    kind = "histogram"

    def __init__(self, name: str,
                 boundaries: Sequence[float] = SIZE_BUCKETS) -> None:
        self.name = name
        self.boundaries: Tuple[float, ...] = tuple(boundaries)
        if list(self.boundaries) != sorted(set(self.boundaries)):
            raise ValueError("histogram boundaries must be sorted/unique")
        self.buckets: List[int] = [0] * len(self.boundaries)
        self.overflow = 0
        self.count = 0
        self.total: float = 0.0
        self._lock = Lock()

    def observe(self, value: float) -> None:
        # The lock keeps count/total/buckets mutually consistent; the
        # bucket-sum == count invariant is what validate_payload checks.
        with self._lock:
            self.count += 1
            self.total += value
            for i, bound in enumerate(self.boundaries):
                if value <= bound:
                    self.buckets[i] += 1
                    return
            self.overflow += 1

    def snapshot(self) -> Dict[str, Any]:
        """A mutually consistent copy for export."""
        with self._lock:
            return {
                "boundaries": list(self.boundaries),
                "buckets": list(self.buckets),
                "overflow": self.overflow,
                "count": self.count,
                "total": self.total,
            }


class _Timed:
    """Context manager feeding a monotonic duration into a histogram."""

    __slots__ = ("_histogram", "_started")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._started = 0.0

    def __enter__(self) -> "_Timed":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._histogram.observe(time.perf_counter() - self._started)


class _NoopTimed:
    """Shared do-nothing timer handed out while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopTimed":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass


_NOOP_TIMED = _NoopTimed()


class MetricsRegistry:
    """Named instruments plus a trace ring, instantiable per test."""

    def __init__(self, enabled: bool = True,
                 trace_capacity: int = 4096) -> None:
        self.enabled = enabled
        self.trace = TraceBuffer(trace_capacity)
        self._lock = SanLock("obs.registry")
        self._instruments: Dict[str, Any] = {}  # repro: guarded-by(_lock, writes)

    # -- instrument creation (locked; lookups are lock-free) -----------

    def _get(self, name: str, cls: type, *args: Any) -> Any:
        instrument = self._instruments.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.get(name)
                if instrument is None:
                    _check_declared(name)
                    instrument = cls(name, *args)
                    if san.ACTIVE:
                        san.track(self, "_instruments",
                                  guard="obs.registry", writes_only=True)
                        san.track_write(self, "_instruments")
                    self._instruments[name] = instrument
        if instrument.kind is not cls.kind:
            raise ValueError(
                f"scope {name!r} is already a {instrument.kind}, "
                f"not a {cls.kind}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str,
                  boundaries: Optional[Sequence[float]] = None) -> Histogram:
        if boundaries is None:
            boundaries = (
                TIME_BUCKETS if name.endswith("_s") else SIZE_BUCKETS
            )
        return self._get(name, Histogram, boundaries)

    # -- recording ------------------------------------------------------
    # Steady state (instrument exists, right kind) is one dict lookup
    # and an in-place add; the slow path validates names and kinds.

    def inc(self, name: str, value: float = 1) -> None:
        if self.enabled:
            instrument = self._instruments.get(name)
            if instrument is not None and instrument.kind == "counter":
                instrument.inc(value)
            else:
                self.counter(name).inc(value)

    def set_gauge(self, name: str, value: float) -> None:
        if self.enabled:
            instrument = self._instruments.get(name)
            if instrument is not None and instrument.kind == "gauge":
                instrument.value = value
            else:
                self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        if self.enabled:
            instrument = self._instruments.get(name)
            if instrument is not None and instrument.kind == "histogram":
                instrument.observe(value)
            else:
                self.histogram(name).observe(value)

    def timed(self, name: str) -> Any:
        if not self.enabled:
            return _NOOP_TIMED
        return _Timed(self.histogram(name))

    def event(self, name: str, **fields: Any) -> None:
        if self.enabled:
            _check_declared(name)
            self.trace.emit(time.monotonic(), name, fields)

    # -- reading --------------------------------------------------------

    def value(self, name: str) -> float:
        """Current value of a counter or gauge (0 if never touched)."""
        instrument = self._instruments.get(name)
        if instrument is None:
            return 0
        if instrument.kind not in ("counter", "gauge"):
            raise ValueError(f"scope {name!r} is a {instrument.kind}")
        return instrument.value

    def counters_snapshot(self) -> Dict[str, float]:
        """Point-in-time copy of every counter (for later deltas)."""
        return {
            name: instrument.value
            for name, instrument in self._instruments.items()
            if instrument.kind == "counter"
        }

    def counters_delta(
        self, before: Dict[str, float]
    ) -> Dict[str, float]:
        """Counter growth since a :meth:`counters_snapshot`."""
        now = self.counters_snapshot()
        return {
            name: now[name] - before.get(name, 0)
            for name in now
            if now[name] != before.get(name, 0)
        }

    def reset(self) -> None:
        """Zero every instrument and drop buffered trace events."""
        with self._lock:
            if san.ACTIVE:
                san.track_write(self, "_instruments")
            self._instruments.clear()
        self.trace.clear()
        self.trace.emitted = 0

    # -- export ---------------------------------------------------------

    def payload(self) -> Dict[str, Any]:
        """The exportable JSON document (see :data:`SCHEMA`)."""
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Any] = {}
        for name, instrument in sorted(self._instruments.items()):
            if instrument.kind == "counter":
                counters[name] = instrument.value
            elif instrument.kind == "gauge":
                gauges[name] = instrument.value
            else:
                histograms[name] = instrument.snapshot()
        return {
            "schema": SCHEMA,
            "enabled": self.enabled,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "trace_emitted": self.trace.emitted,
            "trace_buffered": len(self.trace),
        }

    def write_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.payload(), handle, indent=2, sort_keys=True)
            handle.write("\n")


def validate_payload(payload: Any) -> List[str]:
    """Schema-check an exported metrics document; return the problems.

    Used by ``python -m repro metrics --validate`` (the CI gate): an
    empty list means the document is a well-formed :data:`SCHEMA`
    export whose every scope is declared in the catalog.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"payload is {type(payload).__name__}, expected object"]
    if payload.get("schema") != SCHEMA:
        problems.append(
            f"schema is {payload.get('schema')!r}, expected {SCHEMA!r}"
        )
    for section in ("counters", "gauges"):
        values = payload.get(section)
        if not isinstance(values, dict):
            problems.append(f"missing or non-object {section!r} section")
            continue
        for name, value in values.items():
            if not catalog.is_declared(name):
                problems.append(f"{section}: undeclared scope {name!r}")
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"{section}: {name!r} is not numeric")
    histograms = payload.get("histograms")
    if not isinstance(histograms, dict):
        problems.append("missing or non-object 'histograms' section")
        histograms = {}
    for name, spec in histograms.items():
        if not catalog.is_declared(name):
            problems.append(f"histograms: undeclared scope {name!r}")
        if not isinstance(spec, dict):
            problems.append(f"histograms: {name!r} is not an object")
            continue
        boundaries = spec.get("boundaries")
        buckets = spec.get("buckets")
        if not isinstance(boundaries, list) or not isinstance(buckets, list):
            problems.append(f"histograms: {name!r} lacks boundaries/buckets")
            continue
        if len(boundaries) != len(buckets):
            problems.append(
                f"histograms: {name!r} has {len(buckets)} buckets for "
                f"{len(boundaries)} boundaries"
            )
        declared = spec.get("count")
        if isinstance(declared, int):
            landed = sum(b for b in buckets if isinstance(b, int))
            landed += spec.get("overflow", 0)
            if landed != declared:
                problems.append(
                    f"histograms: {name!r} bucket sum {landed} != "
                    f"count {declared}"
                )
    return problems


# ----------------------------------------------------------------------
# The process-wide registry and its module-level façade
# ----------------------------------------------------------------------

#: The registry production code records into.  Experiment scripts take
#: counter snapshots/deltas of this same object.
REGISTRY = MetricsRegistry(enabled=True)


def enable() -> None:
    global ACTIVE
    REGISTRY.enabled = True
    ACTIVE = True


def disable() -> None:
    global ACTIVE
    REGISTRY.enabled = False
    ACTIVE = False


#: Bound methods of :data:`REGISTRY` — the façade adds no call frame.
#: Each method checks ``REGISTRY.enabled`` itself, which :func:`enable`
#: and :func:`disable` keep in lockstep with :data:`ACTIVE`.
inc = REGISTRY.inc

#: ``add`` reads better than ``inc`` at byte-sized call sites.
add = inc

set_gauge = REGISTRY.set_gauge
observe = REGISTRY.observe
timed = REGISTRY.timed
event = REGISTRY.event


def reset() -> None:
    REGISTRY.reset()
