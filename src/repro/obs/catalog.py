"""Central catalog of every metric and trace scope in the codebase.

Metric names are hierarchical dotted scopes (``subsystem.operation`` or
``subsystem.operation.aspect``).  A counter that is incremented under a
name nobody ever exports — or a dashboard reading a name nobody ever
increments — is instrumentation rot; two independent checks keep the
catalog and the call sites in lock-step, mirroring the
:mod:`repro.faults` failpoint catalog:

* **runtime** — :class:`repro.obs.metrics.MetricsRegistry` rejects
  instrument names missing from :data:`SCOPES` (with a did-you-mean
  hint), so a typo'd scope fails loudly at first use instead of
  accumulating counts under a name no experiment reads;
* **static** — the ``obs-naming`` rule of :mod:`repro.analysis`
  cross-checks every ``obs.inc``/``obs.add``/``obs.observe``/
  ``obs.event``/``obs.timed``/``obs.set_gauge`` string literal in
  ``src/`` against this catalog.

Tests that need throwaway scopes declare them with :func:`declare`
before use.
"""

from __future__ import annotations

import difflib
from typing import Dict, List

#: Every production scope: name -> what the instrument measures.
SCOPES: Dict[str, str] = {
    # -- virtual filesystem boundary (repro/vfs/interface.py) ----------
    "vfs.read_page":
        "Page-granular reads crossing the VirtualFile boundary.",
    "vfs.write_page":
        "Page-granular writes crossing the VirtualFile boundary.",
    # -- pager (repro/db/pager.py) -------------------------------------
    "pager.read_page":
        "Data pages read (and checksum-checked) by the pager.",
    "pager.write_page":
        "Data pages sealed and written by the pager.",
    "pager.flush":
        "Header flush + sync() durable boundaries.",
    # -- client caches (repro/client/caches.py) ------------------------
    "cache.intra.hit":
        "Intra-query cache lookups served from the per-query page map.",
    "cache.intra.miss":
        "Intra-query cache lookups that fell through to the ISP.",
    "cache.intra.evict":
        "Pages LRU-evicted from the intra-query cache.",
    "cache.inter.hit":
        "Inter-query cache lookups that found a cached page.",
    "cache.inter.miss":
        "Inter-query cache lookups with no cached page.",
    "cache.inter.insert":
        "Pages inserted into the inter-query cache.",
    "cache.inter.update":
        "Stale cached pages replaced after a freshness check.",
    "cache.inter.evict":
        "Pages LRU-evicted from the inter-query cache.",
    "cache.inter.fresh_node":
        "Ancestor subtrees confirmed fresh by the ISP (Algorithm 5).",
    # -- VBF fast path (Section V-B) -----------------------------------
    "vbf.fast_path.hit":
        "Cached pages proven fresh by the bloom filter with zero network.",
    "vbf.fast_path.miss":
        "VBF checks that were inconclusive and fell back to Merkle.",
    # -- query client (repro/client/) ----------------------------------
    "client.query.count":
        "Verified queries completed (Algorithm 4 full cycles).",
    "client.query.latency_s":
        "End-to-end per-query latency (histogram, seconds).",
    "client.page.requests":
        "Page-retrieval round trips to the ISP.",
    "client.check.requests":
        "Freshness-check round trips to the ISP (Algorithm 5).",
    "client.meta.requests":
        "File-metadata round trips to the ISP.",
    "client.cert.requests":
        "Certificate fetches at query start.",
    "client.vo.requests":
        "Consolidated-VO fetches at query end.",
    "client.vo.bytes":
        "Bytes of consolidated VO received and verified.",
    "client.net.bytes":
        "Total request+response bytes across all client round trips.",
    "client.rollback":
        "Queries whose cached pages were rolled back after a failure.",
    # -- ISP server (repro/isp/) ---------------------------------------
    "isp.session.open":
        "Query sessions opened (pinned to a snapshot root).",
    "isp.session.finalize":
        "Sessions closed by building a consolidated VO.",
    "isp.session.pruned":
        "Abandoned ISP sessions swept after their idle TTL.",
    "isp.get_page":
        "Pages served to clients.",
    "isp.get_file_meta":
        "Metadata lookups served to clients.",
    "isp.validate_path.fresh":
        "Freshness checks answered with a matching ancestor digest.",
    "isp.validate_path.page":
        "Freshness checks answered with the updated page.",
    "isp.sync_update":
        "CI write batches applied and published.",
    "isp.vo.bytes":
        "Per-session consolidated-VO size (histogram, bytes).",
    "isp.vo.pages":
        "Page claims covered per consolidated VO (histogram).",
    "isp.vo.nodes":
        "Internal-node claims covered per consolidated VO (histogram).",
    "isp.batch.requests":
        "Data-plane requests served through the shared-traversal batch "
        "path (IspServer.serve_batch).",
    "isp.batch.node_hits":
        "Node-store reads served from a batch's shared traversal memo "
        "— fetches saved versus serving each request unbatched.",
    # -- Merkle ADS + node store (repro/merkle/) -----------------------
    "ads.proof.read":
        "Read proofs generated by the ADS.",
    "ads.proof.write":
        "Write proofs generated by the ADS.",
    "ads.apply_writes":
        "Write batches folded into a new ADS root.",
    "ads.prune":
        "Mark-and-sweep prunes of unreachable snapshots.",
    "store.put":
        "Nodes written to the node store (deduplicated).",
    "store.get":
        "Nodes fetched from the node store.",
    "store.sync":
        "Group-commit durable boundaries of the persistent store.",
    "store.compact":
        "Log compactions of the persistent store.",
    # -- CI maintenance (repro/core/ci.py) -----------------------------
    "ci.maintenance.runs":
        "Maintenance runs completed (Algorithms 1-3).",
    "ci.proof.bytes":
        "pi_r + pi_w bytes generated per maintenance run.",
    "ci.pages.read":
        "P_r pages authenticated per maintenance run.",
    "ci.pages.written":
        "P_w pages flushed per maintenance run.",
    # -- RPC wire protocol (repro/rpc/) --------------------------------
    "rpc.frame.encode":
        "Frames encoded for the wire.",
    "rpc.frame.encode.bytes":
        "Payload bytes framed for the wire.",
    "rpc.frame.decode":
        "Frames decoded off the wire.",
    "rpc.frame.decode.bytes":
        "Payload bytes received in decoded frames.",
    "rpc.client.requests":
        "RPC calls issued by RemoteIsp (including retries).",
    "rpc.client.retries":
        "RPC calls that were retried after a transport error.",
    "rpc.client.breaker.open":
        "Circuit-breaker transitions to the open state (endpoint "
        "declared dead after consecutive connection failures).",
    "rpc.client.breaker.fastfail":
        "RPC calls rejected immediately because the endpoint's circuit "
        "was open (no connection attempt, no retry budget spent).",
    "rpc.client.netsplit":
        "RPC attempts blackholed by a simulated network partition "
        "(chaos only; failed before touching the socket).",
    "rpc.client.retry_budget.denied":
        "Retries refused because the endpoint's retry-budget token "
        "bucket ran dry (retry-storm clamp).",
    "rpc.client.overloaded":
        "Server Overloaded sheds honored by the client (retry-after "
        "hint applied to the next backoff).",
    "rpc.client.deadline.expired":
        "RPC calls aborted client-side with DeadlineExceededError "
        "after spending their whole deadline budget.",
    "rpc.server.requests":
        "Requests dispatched by the RPC server.",
    "rpc.server.errors":
        "Requests answered with an error frame.",
    "rpc.server.shed":
        "Requests shed at admission by bounded-queue overload control "
        "(answered with Overloaded + retry-after).",
    "rpc.server.deadline.expired":
        "Requests refused because their propagated deadline was "
        "already spent on arrival or while queued for dispatch.",
    # -- event-loop serving path (repro/serve/) ------------------------
    "serve.connections":
        "Open client connections on the event-loop server (gauge).",
    "serve.inflight":
        "Requests dispatched to the worker pool and not yet answered "
        "(gauge; sampled on the event loop).",
    "serve.loop.lag_s":
        "Seconds one event-loop wake spent processing before the next "
        "select (histogram) — sustained growth means the loop itself "
        "is saturated and work is leaking off the worker pool.",
    "serve.pipelined.requests":
        "Requests received as pipelined (V4, frame-id-carrying) frames.",
    "serve.batch.size":
        "Requests coalesced per event-loop tick into one shared-"
        "traversal batch (histogram).",
    "serve.batch.flushes":
        "Coalesced batches handed to the worker pool.",
    # -- ISP fleet (repro/fleet/) --------------------------------------
    "fleet.router.session.open":
        "Fleet query sessions opened at the router (one per client "
        "session; shard sessions open lazily underneath).",
    "fleet.router.session.finalize":
        "Fleet sessions closed by stitching per-shard VOs.",
    "fleet.router.session.pruned":
        "Abandoned router sessions swept after their idle TTL.",
    "fleet.router.fanout":
        "Shard sessions opened by router fan-out (first touch of a "
        "shard within a fleet session).",
    "fleet.router.stitch.bytes":
        "Stitched consolidated-VO size per fleet session (histogram).",
    "fleet.router.stitch.shards":
        "Per-shard VOs merged per fleet session (histogram).",
    "fleet.replica.read":
        "Fleet sessions routed to a read replica instead of the shard "
        "primary (read/write splitting).",
    "fleet.replica.stale":
        "Replica reads skipped because the replica's certificate "
        "lagged the pinned snapshot version.",
    "fleet.replica.apply":
        "Replication-log deltas applied and published by replicas.",
    "fleet.replication.ship":
        "Replication-log deltas shipped from shard primaries.",
    "fleet.replication.lag":
        "Replication shipments withheld by the fleet.replica.lag "
        "failpoint (chaos only).",
    "fleet.sync.shards":
        "Per-shard acks merged per fleet sync_update fan-out "
        "(histogram).",
    "fleet.hedge.fired":
        "Hedged replica reads launched after the adaptive p99 delay.",
    "fleet.hedge.won":
        "Hedged reads whose replica answered before the primary.",
    "fleet.health.probe":
        "Heartbeat probes sent by the fleet health tracker.",
    "fleet.health.down":
        "Endpoints declared dead after consecutive missed heartbeats.",
    "fleet.health.up":
        "Endpoints recovered back to healthy by a heartbeat.",
    "fleet.promote.ok":
        "Replica promotions completed (replica now serves its shard's "
        "key range as primary).",
    "fleet.promote.refused":
        "Replica promotions refused (stale replica or version "
        "mismatch) — the fleet stays degraded rather than serve from "
        "a lagging copy.",
    "fleet.epoch.abort":
        "In-flight fleet sessions aborted with EpochError because a "
        "promotion bumped the shard-map epoch underneath them.",
    # -- simulated SGX (repro/sgx/enclave.py) --------------------------
    "sgx.ocall":
        "Enclave boundary crossings.",
    "sgx.ocall.bytes":
        "Bytes marshalled across the enclave boundary.",
    "sgx.ocall.overhead_s":
        "Simulated seconds charged for enclave crossings.",
    # -- chaos harness (repro/faults/chaos.py) -------------------------
    "chaos.steps":
        "Chaos schedule steps executed.",
    "chaos.crashes":
        "Simulated crashes survived by the harness.",
    "chaos.recoveries":
        "Successful reopen/recovery cycles after a crash.",
    "chaos.netsplits":
        "Simulated network partitions injected by the fleet harness.",
}


#: Scope *suffix families* whose prefix is chosen at runtime.  A shared
#: component (e.g. :class:`repro.isp.sessions.SessionRegistry`) emits
#: ``f"{scope}.session.open"`` where ``scope`` is per-server ("isp",
#: "fleet.router", ...).  Every concrete expansion must still be listed
#: in :data:`SCOPES` — the runtime check is unchanged — but the static
#: ``obs-naming`` rule accepts an f-string call site when its literal
#: suffix appears here, instead of requiring a per-call-site
#: suppression.
DYNAMIC_SCOPE_SUFFIXES: Dict[str, str] = {
    ".session.open":
        "Sessions registered by a SessionRegistry (per-server prefix).",
    ".session.finalize":
        "Sessions closed by a SessionRegistry (per-server prefix).",
    ".session.pruned":
        "Stale sessions swept by a SessionRegistry (per-server prefix).",
}


def is_dynamic_suffix(suffix: str) -> bool:
    """True if ``suffix`` is a declared runtime-prefixed scope family."""
    return suffix in DYNAMIC_SCOPE_SUFFIXES


def dynamic_expansions(suffix: str) -> List[str]:
    """Concrete :data:`SCOPES` entries ending in ``suffix``."""
    return [name for name in SCOPES if name.endswith(suffix)]


def declare(name: str, doc: str) -> None:
    """Register an extra scope name (test-local instruments).

    Production code must add its names to :data:`SCOPES` directly so the
    static ``obs-naming`` rule can see them; ``declare`` exists for
    tests that exercise the registry with throwaway names.
    """
    SCOPES[name] = doc


def is_declared(name: str) -> bool:
    return name in SCOPES


def suggest(name: str, count: int = 3) -> List[str]:
    """Closest declared scopes to ``name`` (for error messages)."""
    return difflib.get_close_matches(name, SCOPES, n=count, cutoff=0.6)
