"""Source-chain substrate: blocks, consensus, synthetic chains, and ETL.

The paper's data sources are the Bitcoin and Ethereum mainnets, extracted
with Blockchain ETL into relational tables.  This package provides the
equivalent substrate:

* :mod:`repro.chain.block` — headers, blocks, and hash linking;
* :mod:`repro.chain.consensus` — the light-client consensus check the
  query client runs on observed headers;
* :mod:`repro.chain.chain` — an append-only blockchain container;
* :mod:`repro.chain.datagen` — seeded Bitcoin-like and Ethereum-like
  activity generators sharing one universe of addresses/assets (so
  multi-chain joins are meaningful);
* :mod:`repro.chain.etl` — Blockchain-ETL-style extraction of relational
  rows from blocks.
"""

from repro.chain.block import Block, BlockHeader
from repro.chain.chain import Blockchain
from repro.chain.consensus import SimulatedPoW, check_header
from repro.chain.datagen import (
    BitcoinLikeGenerator,
    EthereumLikeGenerator,
    Universe,
)
from repro.chain.etl import extract_rows, schema_for_chain

__all__ = [
    "BitcoinLikeGenerator",
    "Block",
    "BlockHeader",
    "Blockchain",
    "EthereumLikeGenerator",
    "SimulatedPoW",
    "Universe",
    "check_header",
    "extract_rows",
    "schema_for_chain",
]
