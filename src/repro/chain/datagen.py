"""Seeded synthetic activity generators for the simulated source chains.

The paper's dataset is one week of Bitcoin + Ethereum mainnet activity.
These generators produce the laptop-scale equivalent: two chains sharing a
:class:`Universe` of addresses, ERC-20-style tokens, and NFT assets, so
that cross-chain queries (NFT provenance across marketplaces, total value
locked across networks) have meaningful joins and unions.

Activity is skewed: addresses and assets are sampled Zipfian, so a small
set of hot accounts dominates — this is what makes the paper's inter-query
page cache effective, and it is preserved deliberately.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.chain.chain import Blockchain


def _zipf_weights(n: int, exponent: float = 1.1) -> List[float]:
    return [1.0 / (rank ** exponent) for rank in range(1, n + 1)]


@dataclass
class Universe:
    """Shared addresses and assets sampled by both chain generators."""

    seed: int = 7
    n_addresses: int = 200
    n_tokens: int = 12
    n_nft_collections: int = 8
    nfts_per_collection: int = 25
    addresses: List[str] = field(default_factory=list)
    tokens: List[Dict[str, str]] = field(default_factory=list)
    nfts: List[Dict[str, str]] = field(default_factory=list)
    marketplaces: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        rng = random.Random(self.seed)
        self.addresses = [
            "0x%040x" % rng.getrandbits(160) for _ in range(self.n_addresses)
        ]
        symbols = [
            "USDT", "USDC", "WETH", "WBTC", "DAI", "LINK",
            "UNI", "AAVE", "CRV", "MKR", "SNX", "COMP",
        ]
        self.tokens = [
            {
                "address": "0x%040x" % rng.getrandbits(160),
                "symbol": symbols[i % len(symbols)],
            }
            for i in range(self.n_tokens)
        ]
        self.nfts = [
            {
                "collection": f"collection-{c}",
                "token_id": "0x%04x" % ((c << 8) | i),
            }
            for c in range(self.n_nft_collections)
            for i in range(self.nfts_per_collection)
        ]
        self.marketplaces = ["opensea", "blur", "magiceden", "looksrare"]
        self._addr_weights = _zipf_weights(len(self.addresses))
        self._token_weights = _zipf_weights(len(self.tokens))
        self._nft_weights = _zipf_weights(len(self.nfts))

    def pick_address(self, rng: random.Random) -> str:
        return rng.choices(self.addresses, weights=self._addr_weights)[0]

    def pick_token(self, rng: random.Random) -> Dict[str, str]:
        return rng.choices(self.tokens, weights=self._token_weights)[0]

    def pick_nft(self, rng: random.Random) -> Dict[str, str]:
        return rng.choices(self.nfts, weights=self._nft_weights)[0]

    def pick_marketplace(self, rng: random.Random) -> str:
        return rng.choice(self.marketplaces)


#: Default wall-clock start: 2023-05-12 00:00:00 UTC (the paper's window).
DEFAULT_START_TIME = 1_683_849_600


class _GeneratorBase:
    """Shared machinery: a chain, a clock, and a seeded RNG."""

    chain_id = "base"
    block_interval_s = 600

    def __init__(
        self,
        universe: Universe,
        seed: int = 1,
        start_time: int = DEFAULT_START_TIME,
        txs_per_block: int = 12,
    ) -> None:
        self.universe = universe
        self.rng = random.Random((seed << 16) ^ hash(self.chain_id) & 0xFFFF)
        self.clock = start_time
        self.txs_per_block = txs_per_block
        self.chain = Blockchain(self.chain_id)
        self._tx_counter = 0

    def next_tx_id(self) -> str:
        self._tx_counter += 1
        return f"{self.chain_id}-tx-{self._tx_counter:08d}"

    def make_transactions(self) -> List[Dict[str, Any]]:
        raise NotImplementedError

    def advance_block(self) -> None:
        """Mine and append one block of synthetic activity."""
        txs = self.make_transactions()
        self.chain.mine_and_append(txs, self.clock)
        self.clock += self.block_interval_s

    def advance_blocks(self, count: int) -> None:
        for _ in range(count):
            self.advance_block()


class BitcoinLikeGenerator(_GeneratorBase):
    """UTXO-style activity: transactions with inputs/outputs and fees,
    plus ordinals-style NFT inscriptions so cross-chain NFT queries span
    both chains."""

    chain_id = "btc"
    block_interval_s = 600

    def make_transactions(self) -> List[Dict[str, Any]]:
        rng, uni = self.rng, self.universe
        txs: List[Dict[str, Any]] = []
        for _ in range(self.txs_per_block):
            n_in = rng.randint(1, 3)
            n_out = rng.randint(1, 3)
            inputs = [
                {
                    "address": uni.pick_address(rng),
                    "value": rng.randint(10_000, 5_000_000),
                }
                for _ in range(n_in)
            ]
            total_in = sum(i["value"] for i in inputs)
            fee = rng.randint(200, 5_000)
            spendable = max(total_in - fee, n_out)
            outputs = []
            remaining = spendable
            for i in range(n_out):
                value = (
                    remaining
                    if i == n_out - 1
                    else rng.randint(1, max(1, remaining - (n_out - 1 - i)))
                )
                remaining -= value
                outputs.append(
                    {"address": uni.pick_address(rng), "value": value}
                )
            tx: Dict[str, Any] = {
                "kind": "btc_tx",
                "tx_id": self.next_tx_id(),
                "fee": fee,
                "inputs": inputs,
                "outputs": outputs,
            }
            if rng.random() < 0.15:
                nft = uni.pick_nft(rng)
                tx["nft_transfer"] = {
                    "collection": nft["collection"],
                    "token_id": nft["token_id"],
                    "from_address": uni.pick_address(rng),
                    "to_address": uni.pick_address(rng),
                    "marketplace": uni.pick_marketplace(rng),
                    "price": round(rng.uniform(0.01, 25.0), 4),
                }
            txs.append(tx)
        return txs


class EthereumLikeGenerator(_GeneratorBase):
    """Account-style activity: value transfers, ERC-20 token transfers,
    NFT marketplace trades, and event logs."""

    chain_id = "eth"
    block_interval_s = 600

    def make_transactions(self) -> List[Dict[str, Any]]:
        rng, uni = self.rng, self.universe
        txs: List[Dict[str, Any]] = []
        for _ in range(self.txs_per_block):
            tx: Dict[str, Any] = {
                "kind": "eth_tx",
                "hash": self.next_tx_id(),
                "from_address": uni.pick_address(rng),
                "to_address": uni.pick_address(rng),
                "value": rng.randint(0, 10_000_000),
                "gas_used": rng.randint(21_000, 400_000),
                "gas_price": rng.randint(10, 150),
            }
            roll = rng.random()
            if roll < 0.40:
                token = uni.pick_token(rng)
                tx["token_transfers"] = [
                    {
                        "token_address": token["address"],
                        "symbol": token["symbol"],
                        "from_address": uni.pick_address(rng),
                        "to_address": uni.pick_address(rng),
                        "value": rng.randint(1, 1_000_000),
                    }
                    for _ in range(rng.randint(1, 2))
                ]
            elif roll < 0.60:
                nft = uni.pick_nft(rng)
                tx["nft_transfer"] = {
                    "collection": nft["collection"],
                    "token_id": nft["token_id"],
                    "from_address": uni.pick_address(rng),
                    "to_address": uni.pick_address(rng),
                    "marketplace": uni.pick_marketplace(rng),
                    "price": round(rng.uniform(0.01, 120.0), 4),
                }
            if rng.random() < 0.3:
                tx["logs"] = [
                    {
                        "address": uni.pick_address(rng),
                        "topic": f"topic-{rng.randint(0, 15)}",
                    }
                ]
            txs.append(tx)
        return txs
