"""Blockchain-ETL-style extraction of relational rows from blocks.

Converts a block of either simulated chain into rows for a fixed family of
relational tables (the analog of the paper's 16 Blockchain-ETL tables).
Every row carries ``block_height`` and ``block_time`` so that the paper's
time-window queries can be expressed as range predicates.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.chain.block import Block

#: Column definitions per table: (name, sql_type).
Schema = Dict[str, List[Tuple[str, str]]]

_BTC_SCHEMA: Schema = {
    "btc_blocks": [
        ("height", "INTEGER"),
        ("block_hash", "TEXT"),
        ("block_time", "INTEGER"),
        ("tx_count", "INTEGER"),
    ],
    "btc_transactions": [
        ("tx_id", "TEXT"),
        ("block_height", "INTEGER"),
        ("block_time", "INTEGER"),
        ("fee", "INTEGER"),
        ("input_value", "INTEGER"),
        ("output_value", "INTEGER"),
        ("input_count", "INTEGER"),
        ("output_count", "INTEGER"),
    ],
    "btc_inputs": [
        ("tx_id", "TEXT"),
        ("idx", "INTEGER"),
        ("address", "TEXT"),
        ("value", "INTEGER"),
        ("block_time", "INTEGER"),
    ],
    "btc_outputs": [
        ("tx_id", "TEXT"),
        ("idx", "INTEGER"),
        ("address", "TEXT"),
        ("value", "INTEGER"),
        ("block_time", "INTEGER"),
    ],
    "btc_nft_transfers": [
        ("tx_id", "TEXT"),
        ("block_time", "INTEGER"),
        ("collection", "TEXT"),
        ("token_id", "TEXT"),
        ("from_address", "TEXT"),
        ("to_address", "TEXT"),
        ("marketplace", "TEXT"),
        ("price", "REAL"),
    ],
}

_ETH_SCHEMA: Schema = {
    "eth_blocks": [
        ("height", "INTEGER"),
        ("block_hash", "TEXT"),
        ("block_time", "INTEGER"),
        ("tx_count", "INTEGER"),
    ],
    "eth_transactions": [
        ("hash", "TEXT"),
        ("block_height", "INTEGER"),
        ("block_time", "INTEGER"),
        ("from_address", "TEXT"),
        ("to_address", "TEXT"),
        ("value", "INTEGER"),
        ("gas_used", "INTEGER"),
        ("gas_price", "INTEGER"),
    ],
    "eth_token_transfers": [
        ("tx_hash", "TEXT"),
        ("block_time", "INTEGER"),
        ("token_address", "TEXT"),
        ("symbol", "TEXT"),
        ("from_address", "TEXT"),
        ("to_address", "TEXT"),
        ("value", "INTEGER"),
    ],
    "eth_nft_transfers": [
        ("tx_hash", "TEXT"),
        ("block_time", "INTEGER"),
        ("collection", "TEXT"),
        ("token_id", "TEXT"),
        ("from_address", "TEXT"),
        ("to_address", "TEXT"),
        ("marketplace", "TEXT"),
        ("price", "REAL"),
    ],
    "eth_logs": [
        ("tx_hash", "TEXT"),
        ("block_time", "INTEGER"),
        ("address", "TEXT"),
        ("topic", "TEXT"),
    ],
}


def schema_for_chain(chain_id: str) -> Schema:
    """Return the relational schema for one chain's extracted tables."""
    if chain_id == "btc":
        return dict(_BTC_SCHEMA)
    if chain_id == "eth":
        return dict(_ETH_SCHEMA)
    raise ValueError(f"unknown chain id {chain_id!r}")


def full_schema() -> Schema:
    """Return the union of both chains' schemas (the ISP's database)."""
    schema = dict(_BTC_SCHEMA)
    schema.update(_ETH_SCHEMA)
    return schema


def extract_rows(block: Block) -> Dict[str, List[Dict[str, Any]]]:
    """Extract relational rows from one block, keyed by table name."""
    chain_id = block.header.chain_id
    if chain_id == "btc":
        return _extract_btc(block)
    if chain_id == "eth":
        return _extract_eth(block)
    raise ValueError(f"unknown chain id {chain_id!r}")


def _extract_btc(block: Block) -> Dict[str, List[Dict[str, Any]]]:
    time = block.header.timestamp
    rows: Dict[str, List[Dict[str, Any]]] = {t: [] for t in _BTC_SCHEMA}
    rows["btc_blocks"].append(
        {
            "height": block.header.height,
            "block_hash": block.header.digest().hex(),
            "block_time": time,
            "tx_count": len(block.transactions),
        }
    )
    for tx in block.transactions:
        inputs = tx.get("inputs", [])
        outputs = tx.get("outputs", [])
        rows["btc_transactions"].append(
            {
                "tx_id": tx["tx_id"],
                "block_height": block.header.height,
                "block_time": time,
                "fee": tx["fee"],
                "input_value": sum(i["value"] for i in inputs),
                "output_value": sum(o["value"] for o in outputs),
                "input_count": len(inputs),
                "output_count": len(outputs),
            }
        )
        for idx, item in enumerate(inputs):
            rows["btc_inputs"].append(
                {
                    "tx_id": tx["tx_id"],
                    "idx": idx,
                    "address": item["address"],
                    "value": item["value"],
                    "block_time": time,
                }
            )
        for idx, item in enumerate(outputs):
            rows["btc_outputs"].append(
                {
                    "tx_id": tx["tx_id"],
                    "idx": idx,
                    "address": item["address"],
                    "value": item["value"],
                    "block_time": time,
                }
            )
        nft = tx.get("nft_transfer")
        if nft is not None:
            rows["btc_nft_transfers"].append(
                {
                    "tx_id": tx["tx_id"],
                    "block_time": time,
                    "collection": nft["collection"],
                    "token_id": nft["token_id"],
                    "from_address": nft["from_address"],
                    "to_address": nft["to_address"],
                    "marketplace": nft["marketplace"],
                    "price": nft["price"],
                }
            )
    return rows


def _extract_eth(block: Block) -> Dict[str, List[Dict[str, Any]]]:
    time = block.header.timestamp
    rows: Dict[str, List[Dict[str, Any]]] = {t: [] for t in _ETH_SCHEMA}
    rows["eth_blocks"].append(
        {
            "height": block.header.height,
            "block_hash": block.header.digest().hex(),
            "block_time": time,
            "tx_count": len(block.transactions),
        }
    )
    for tx in block.transactions:
        rows["eth_transactions"].append(
            {
                "hash": tx["hash"],
                "block_height": block.header.height,
                "block_time": time,
                "from_address": tx["from_address"],
                "to_address": tx["to_address"],
                "value": tx["value"],
                "gas_used": tx["gas_used"],
                "gas_price": tx["gas_price"],
            }
        )
        for transfer in tx.get("token_transfers", []):
            rows["eth_token_transfers"].append(
                {
                    "tx_hash": tx["hash"],
                    "block_time": time,
                    "token_address": transfer["token_address"],
                    "symbol": transfer["symbol"],
                    "from_address": transfer["from_address"],
                    "to_address": transfer["to_address"],
                    "value": transfer["value"],
                }
            )
        nft = tx.get("nft_transfer")
        if nft is not None:
            rows["eth_nft_transfers"].append(
                {
                    "tx_hash": tx["hash"],
                    "block_time": time,
                    "collection": nft["collection"],
                    "token_id": nft["token_id"],
                    "from_address": nft["from_address"],
                    "to_address": nft["to_address"],
                    "marketplace": nft["marketplace"],
                    "price": nft["price"],
                }
            )
        for log in tx.get("logs", []):
            rows["eth_logs"].append(
                {
                    "tx_hash": tx["hash"],
                    "block_time": time,
                    "address": log["address"],
                    "topic": log["topic"],
                }
            )
    return rows
