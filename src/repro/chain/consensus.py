"""Light-client consensus check for simulated source chains.

The paper's query client checks that every observed header "conforms to the
consensus protocol" (Algorithm 4, line 8).  We model a proof-of-work-style
rule: a header is valid if its digest falls below a per-chain difficulty
target.  Difficulty is deliberately tiny (a few leading zero bits) so block
production stays fast while still giving the light client a real,
forgeable-only-by-mining predicate to test.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chain.block import BlockHeader
from repro.errors import ChainError

#: Default number of leading zero bits required of a header digest.
DEFAULT_DIFFICULTY_BITS = 8

_MAX_NONCE = 1 << 32


@dataclass(frozen=True)
class SimulatedPoW:
    """Proof-of-work parameters for one chain."""

    difficulty_bits: int = DEFAULT_DIFFICULTY_BITS

    def target(self) -> int:
        return 1 << (256 - self.difficulty_bits)

    def check(self, header: BlockHeader) -> bool:
        """Return True iff the header satisfies the difficulty target."""
        return int.from_bytes(header.digest(), "big") < self.target()

    def mine(self, header: BlockHeader) -> BlockHeader:
        """Find a nonce satisfying the target (deterministic scan from 0)."""
        candidate = header
        for nonce in range(_MAX_NONCE):
            candidate = header.with_nonce(nonce)
            if self.check(candidate):
                return candidate
        raise ChainError("exhausted nonce space while mining")


# repro: taint-sanitizer
def check_header(
    header: BlockHeader, pow_params: SimulatedPoW, chain_id: str
) -> None:
    """Raise :class:`~repro.errors.ChainError` unless the header is valid
    for ``chain_id`` under ``pow_params`` — the light-client check."""
    if header.chain_id != chain_id:
        raise ChainError(
            f"header chain id {header.chain_id!r} != expected {chain_id!r}"
        )
    if not pow_params.check(header):
        raise ChainError(
            f"header at height {header.height} fails the consensus check"
        )
