"""Append-only blockchain container used by the simulated source chains.

A :class:`Blockchain` holds mined blocks, enforces hash-linking and height
monotonicity on append, and serves headers/blocks to the other parties
(DCert CI, V2FS CI, ISP, query client) — the paper's steps (1)-(4) of
Figure 4 are reads from this object.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.chain.block import (
    GENESIS_PREV,
    Block,
    BlockHeader,
    transactions_root,
)
from repro.chain.consensus import SimulatedPoW
from repro.errors import ChainError


class Blockchain:
    """One simulated source chain."""

    def __init__(
        self,
        chain_id: str,
        pow_params: Optional[SimulatedPoW] = None,
    ) -> None:
        self.chain_id = chain_id
        self.pow_params = pow_params if pow_params is not None else SimulatedPoW()
        self._blocks: List[Block] = []

    def __len__(self) -> int:
        return len(self._blocks)

    @property
    def height(self) -> int:
        """Height of the latest block (-1 when empty)."""
        return len(self._blocks) - 1

    def make_block(
        self, transactions: List[Dict[str, Any]], timestamp: int
    ) -> Block:
        """Mine the next block over ``transactions`` (does not append)."""
        prev = (
            self._blocks[-1].header.digest()
            if self._blocks
            else GENESIS_PREV
        )
        header = BlockHeader(
            chain_id=self.chain_id,
            height=len(self._blocks),
            prev_digest=prev,
            tx_root=transactions_root(transactions),
            timestamp=timestamp,
        )
        mined = self.pow_params.mine(header)
        return Block(header=mined, transactions=list(transactions))

    def append(self, block: Block) -> None:
        """Validate and append a mined block."""
        expected_prev = (
            self._blocks[-1].header.digest()
            if self._blocks
            else GENESIS_PREV
        )
        if block.header.height != len(self._blocks):
            raise ChainError(
                f"expected height {len(self._blocks)}, "
                f"got {block.header.height}"
            )
        if block.header.prev_digest != expected_prev:
            raise ChainError("block does not link to the chain tip")
        if block.header.chain_id != self.chain_id:
            raise ChainError("block belongs to a different chain")
        if not block.verify_body():
            raise ChainError("transaction root does not match the body")
        if not self.pow_params.check(block.header):
            raise ChainError("block fails the consensus check")
        self._blocks.append(block)

    def mine_and_append(
        self, transactions: List[Dict[str, Any]], timestamp: int
    ) -> Block:
        block = self.make_block(transactions, timestamp)
        self.append(block)
        return block

    def block_at(self, height: int) -> Block:
        if not 0 <= height < len(self._blocks):
            raise ChainError(f"no block at height {height}")
        return self._blocks[height]

    def header_at(self, height: int) -> BlockHeader:
        return self.block_at(height).header

    def latest_header(self) -> BlockHeader:
        if not self._blocks:
            raise ChainError("chain is empty")
        return self._blocks[-1].header

    def blocks(self) -> List[Block]:
        return list(self._blocks)
