"""Block and header model shared by all simulated source chains.

A header binds the chain id, height, previous-header digest, a Merkle root
over the block's transaction payloads, a timestamp, and a consensus nonce.
``BlockHeader.digest()`` is the canonical block identity used by DCert, the
V2FS certificate, and the light client.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.crypto.hashing import Digest, hash_bytes, hash_concat, hash_pair


def payload_digest(payload: Dict[str, Any]) -> Digest:
    """Canonical digest of one transaction payload (sorted-key JSON)."""
    return hash_bytes(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    )


def transactions_root(payloads: List[Dict[str, Any]]) -> Digest:
    """Merkle root over the block's transaction payloads."""
    level = [payload_digest(p) for p in payloads]
    if not level:
        return hash_bytes(b"empty-tx-root")
    while len(level) > 1:
        if len(level) % 2:
            level.append(level[-1])
        level = [
            hash_pair(level[i], level[i + 1]) for i in range(0, len(level), 2)
        ]
    return level[0]


@dataclass(frozen=True)
class BlockHeader:
    """Header of a simulated block."""

    chain_id: str
    height: int
    prev_digest: Digest
    tx_root: Digest
    timestamp: int
    nonce: int = 0

    def digest(self) -> Digest:
        """The block identity: a digest over all header fields."""
        return hash_concat(
            [
                b"hdr",
                self.chain_id.encode("utf-8"),
                self.height.to_bytes(8, "big"),
                self.prev_digest,
                self.tx_root,
                self.timestamp.to_bytes(8, "big"),
                self.nonce.to_bytes(8, "big"),
            ]
        )

    def with_nonce(self, nonce: int) -> "BlockHeader":
        return BlockHeader(
            self.chain_id,
            self.height,
            self.prev_digest,
            self.tx_root,
            self.timestamp,
            nonce,
        )


@dataclass(frozen=True)
class Block:
    """A block: header plus the list of transaction payloads."""

    header: BlockHeader
    transactions: List[Dict[str, Any]] = field(default_factory=list)

    def digest(self) -> Digest:
        return self.header.digest()

    def verify_body(self) -> bool:
        """Check that the header's tx root matches the carried payloads."""
        return transactions_root(self.transactions) == self.header.tx_root


#: Previous-digest value of every genesis block.
GENESIS_PREV: Digest = hash_bytes(b"genesis")
