"""Exception hierarchy for the V2FS reproduction.

Every failure mode in the system raises a subclass of :class:`ReproError`,
so callers can catch the whole family or a specific condition.  Verification
failures are deliberately separated from operational errors: a
:class:`VerificationError` means an *integrity* property was violated
(potentially an attack), while the other subclasses signal ordinary misuse
or resource problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class VerificationError(ReproError):
    """An integrity check failed (tampered data, forged proof/certificate)."""


class CertificateError(VerificationError):
    """A DCert or V2FS certificate failed validation."""


class ProofError(VerificationError):
    """A Merkle proof failed to reconstruct the expected root."""


class StorageError(ReproError):
    """A filesystem/page-store operation failed (missing file, bad offset)."""


class FileNotFoundInStoreError(StorageError):
    """The requested path does not exist in the page store."""


class TornPageError(StorageError):
    """A page failed its checksum epilogue: a torn or corrupt write was
    detected on read-back instead of being silently returned."""


class SQLError(ReproError):
    """Base class for database-engine errors."""


class SQLParseError(SQLError):
    """The SQL text could not be tokenized or parsed."""


class SQLCatalogError(SQLError):
    """Reference to an unknown table/column/index, or a duplicate definition."""


class SQLTypeError(SQLError):
    """A value had the wrong type for the requested operation."""


class SQLExecutionError(SQLError):
    """A runtime failure while executing a query plan."""


class ChainError(ReproError):
    """A blockchain structural rule was violated (bad link, height, etc.)."""


class EnclaveError(ReproError):
    """Illegal use of the simulated SGX enclave boundary."""


class NetworkError(ReproError):
    """A simulated network transport failure."""


class FleetError(NetworkError):
    """A sharded-fleet coordination failure (unroutable path, conflicting
    per-shard proofs during VO stitching, partial ``sync_update`` fan-out).
    A :class:`NetworkError` on the wire: clients treat it as a transient
    service failure, never as verified data."""


class RpcError(NetworkError):
    """A failure on the real (socket-backed) client-ISP RPC path."""


class WireFormatError(RpcError):
    """A frame or message violated the wire protocol (malformed, corrupt,
    truncated, or oversized input).  Raised instead of ever crashing on —
    or silently accepting — bytes from an untrusted peer."""


class RpcConnectionError(RpcError):
    """Could not establish or keep a connection to the RPC peer."""


class RpcTimeoutError(RpcError):
    """An RPC did not complete within its per-request timeout."""


class DeadlineExceededError(RpcTimeoutError):
    """A request's end-to-end deadline budget ran out before it completed.

    Distinct from :class:`RpcTimeoutError` (one socket round trip took
    too long): the *whole call* — retries, backoff, router fan-out —
    spent its budget.  A deadline abort is always a typed refusal,
    never a partial or unverified answer."""


class OverloadedError(RpcError):
    """The server shed this request at admission (bounded-queue
    overload).  Carries ``retry_after_s``, the server's backpressure
    hint; clients honor it instead of hammering a saturated endpoint.
    Shedding never counts against the endpoint's circuit breaker — an
    overloaded server is alive, not dead."""

    def __init__(
        self, message: str, retry_after_s: "float | None" = None
    ) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class EpochError(FleetError):
    """The fleet's shard map changed epoch (a failover promotion)
    while this session was in flight.  The routing the session pinned
    is no longer valid, so it aborts typed rather than stitch a proof
    across two fleet topologies; the client reopens and retries."""


class SanitizerError(ReproError):
    """The runtime concurrency sanitizer accumulated reports (data races
    or lock-order inversions) that the caller asserted could not occur."""
