"""Simulated client-ISP network with request/byte accounting.

The paper reports query latency split into execution and network time,
plus the number of network requests by purpose (page retrieval vs
freshness checks) and the VO size.  This package provides the deterministic
cost model that produces those numbers: every client-ISP round trip is
accounted by category, and simulated transfer time follows a
latency + size/bandwidth model calibrated to the paper's 1 Gbps testbed.
"""

from repro.network.transport import (
    CATEGORY_CERT,
    CATEGORY_CHECK,
    CATEGORY_META,
    CATEGORY_PAGE,
    CATEGORY_VO,
    NetworkCostModel,
    NetworkStats,
    Transport,
)

__all__ = [
    "CATEGORY_CERT",
    "CATEGORY_META",
    "CATEGORY_CHECK",
    "CATEGORY_PAGE",
    "CATEGORY_VO",
    "NetworkCostModel",
    "NetworkStats",
    "Transport",
]
