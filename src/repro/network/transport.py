"""Deterministic network accounting between the query client and the ISP.

All communication in the simulation is in-process; the
:class:`Transport` records, for every round trip, its purpose category,
request/response byte counts, and the simulated wall-clock cost under a
:class:`NetworkCostModel`.  The categories match the paper's breakdown:

* ``page`` — page retrieval requests (Fig. 10/15 ``page`` bars);
* ``check`` — freshness-check requests (Fig. 10/15 ``check`` bars);
* ``cert`` — certificate fetch at query start;
* ``vo`` — the consolidated verification object at query end;
* ``meta`` — file-metadata lookups (exists/size/page count).

This deterministic accounting is the default *simulated* transport
backend; :mod:`repro.rpc` carries the same protocol over real sockets,
and both share these categories so the paper's breakdown stays
comparable either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

CATEGORY_PAGE = "page"
CATEGORY_CHECK = "check"
CATEGORY_CERT = "cert"
CATEGORY_VO = "vo"
CATEGORY_META = "meta"

#: Every category :meth:`Transport.account` accepts; a typo'd category
#: would silently split the stats, so unknown ones are rejected.
KNOWN_CATEGORIES = frozenset(
    {CATEGORY_PAGE, CATEGORY_CHECK, CATEGORY_CERT, CATEGORY_VO,
     CATEGORY_META}
)


@dataclass
class NetworkCostModel:
    """Latency + bandwidth model.

    Defaults model the paper's testbed: a 1 Gbps link (125 MB/s) between
    two machines on a LAN with ~0.2 ms application-level round-trip
    latency per request.
    """

    latency_s: float = 0.0002
    bandwidth_bytes_per_s: float = 125_000_000.0

    def round_trip_cost(self, request_bytes: int, response_bytes: int) -> float:
        transfer = (request_bytes + response_bytes) / self.bandwidth_bytes_per_s
        return self.latency_s + transfer


@dataclass
class NetworkStats:
    """Accumulated traffic counters, split by request category."""

    requests: Dict[str, int] = field(default_factory=dict)
    bytes_sent: Dict[str, int] = field(default_factory=dict)
    bytes_received: Dict[str, int] = field(default_factory=dict)
    simulated_time_s: float = 0.0

    def record(
        self,
        category: str,
        request_bytes: int,
        response_bytes: int,
        cost_s: float,
    ) -> None:
        self.requests[category] = self.requests.get(category, 0) + 1
        self.bytes_sent[category] = (
            self.bytes_sent.get(category, 0) + request_bytes
        )
        self.bytes_received[category] = (
            self.bytes_received.get(category, 0) + response_bytes
        )
        self.simulated_time_s += cost_s

    def total_requests(self) -> int:
        return sum(self.requests.values())

    def total_bytes(self) -> int:
        return sum(self.bytes_sent.values()) + sum(
            self.bytes_received.values()
        )

    def snapshot(self) -> "NetworkStats":
        copy = NetworkStats(
            requests=dict(self.requests),
            bytes_sent=dict(self.bytes_sent),
            bytes_received=dict(self.bytes_received),
            simulated_time_s=self.simulated_time_s,
        )
        return copy

    def delta_since(self, earlier: "NetworkStats") -> "NetworkStats":
        delta = NetworkStats()
        for category in set(self.requests) | set(earlier.requests):
            delta.requests[category] = (
                self.requests.get(category, 0)
                - earlier.requests.get(category, 0)
            )
        for category in set(self.bytes_sent) | set(earlier.bytes_sent):
            delta.bytes_sent[category] = (
                self.bytes_sent.get(category, 0)
                - earlier.bytes_sent.get(category, 0)
            )
        for category in set(self.bytes_received) | set(earlier.bytes_received):
            delta.bytes_received[category] = (
                self.bytes_received.get(category, 0)
                - earlier.bytes_received.get(category, 0)
            )
        delta.simulated_time_s = (
            self.simulated_time_s - earlier.simulated_time_s
        )
        return delta


class Transport:
    """Accounts one logical client-ISP link."""

    def __init__(self, cost_model: NetworkCostModel | None = None) -> None:
        self.cost_model = (
            cost_model if cost_model is not None else NetworkCostModel()
        )
        self.stats = NetworkStats()

    def account(
        self, category: str, request_bytes: int, response_bytes: int
    ) -> None:
        """Record one round trip of the given category and sizes."""
        if category not in KNOWN_CATEGORIES:
            raise ValueError(
                f"unknown transport category {category!r}; expected one "
                f"of {sorted(KNOWN_CATEGORIES)}"
            )
        cost = self.cost_model.round_trip_cost(request_bytes, response_bytes)
        self.stats.record(category, request_bytes, response_bytes, cost)
