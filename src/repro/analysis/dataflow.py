"""Interprocedural dataflow rules: ``verify-before-use`` and
``blocking-effect``.

V2FS's security argument is a trust boundary: every byte that arrives
from the untrusted ISP must pass a verification entry point before any
downstream consumer (the query result, a page cache, the pager) may
use it.  The tests exercise that discipline; this module makes the
checker enforce it, the same way ``lock-order``/``guarded-by`` turned
the concurrency conventions of DESIGN §8 into static guarantees.  Both
rules reason over the :class:`~repro.analysis.concurrency.Program`
index (call graph, attribute/parameter type inference, lock
summaries) that PR 5 built.

**verify-before-use** is a taint analysis.  The trust boundary is
declared in the code it protects, with def-line annotations the same
way ``guarded-by`` declares lock ownership:

* ``# repro: taint-source`` — the function returns untrusted bytes
  (socket reads, wire decoders, the ISP-facing interface);
* ``# repro: taint-sanitizer`` — calling it verifies its arguments
  (and, for method-style sanitizers, its receiver) against the
  on-chain certificate, clearing their taint;
* ``# repro: taint-sink`` — its arguments must be verified data
  (cache inserts, pager writes).

Taint propagates through assignments, tuple unpacking, arithmetic,
attribute/subscript loads, and — interprocedurally — through call
edges via per-function summaries (does ``f`` return taint? do any of
its parameters flow to a sink?) iterated to a fixpoint.  A tainted
value reaching a sink yields an error carrying the full witness chain
(source function → intermediate calls → sink call site), mirroring the
per-edge witnesses of the lock-order reports.

Deliberate conservatism (documented misses, never false positives):
object *fields* are not tracked (``self.x = tainted`` then later
``self.x`` reads as clean), unresolvable callees launder taint, and
the statement walk is flow-sensitive but path-insensitive — a
sanitizer on one branch clears taint for the code after the join.

**blocking-effect** infers each function's worst blocking effect —
lock acquisition, ``sleep``, ``fsync``, socket I/O, subprocess —
transitively over the call graph, and publishes the per-function
table as a JSON artifact (:func:`build_effect_table`), the work-list
for ROADMAP item 2's asyncio refactor of the serving path.  Two
policies are enforced now:

1. no blocking primitive may execute (directly or through any
   resolvable call chain) while holding a lock from the DESIGN §8
   ``SanLock`` inventory — a blocked holder stalls every thread
   queued on that lock;
2. on a deadline-carrying path (any function taking a ``deadline``
   parameter, PR 7, plus everything it reaches), unbounded waits —
   ``.join()``/``.wait()`` without a timeout, a bare lock
   ``acquire()``, an uncapped ``create_connection``,
   ``settimeout(None)`` — are errors: a deadline the transport cannot
   enforce is decorative.
"""

from __future__ import annotations

import ast
import re
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.concurrency import (
    FunctionInfo,
    Program,
    _cached_program,
    _entry_held,
    _FunctionVisitor,
    _short,
    _transitive_acquires,
)
from repro.analysis.core import (
    Finding,
    ModuleContext,
    ProgramRule,
    register,
)

# ----------------------------------------------------------------------
# Trust-boundary annotations
# ----------------------------------------------------------------------

ROLE_SOURCE = "source"
ROLE_SANITIZER = "sanitizer"
ROLE_SINK = "sink"

_TAINT_RE = re.compile(r"#\s*repro:\s*taint-(source|sanitizer|sink)\b")


def taint_roles(program: Program) -> Dict[str, str]:
    """func id -> role, from ``# repro: taint-<role>`` annotations on
    the ``def`` line or the line directly above it (which, for
    decorated functions, is the line between decorator and ``def``)."""
    roles: Dict[str, str] = {}
    for func in program.functions.values():
        node = func.node
        if node is None:
            continue
        for lineno in (node.lineno, node.lineno - 1):
            if not 1 <= lineno <= len(func.ctx.lines):
                continue
            match = _TAINT_RE.search(func.ctx.lines[lineno - 1])
            if match is not None:
                roles[func.func_id] = match.group(1)
                break
    return roles


def _param_names(func: FunctionInfo) -> List[str]:
    node = func.node
    if node is None:
        return []
    names = [a.arg for a in node.args.args]
    if func.class_id is not None and names and names[0] in ("self", "cls"):
        names = names[1:]
    return names + [a.arg for a in node.args.kwonlyargs]


# ----------------------------------------------------------------------
# Taint domain
# ----------------------------------------------------------------------
#
# A taint token is a tuple:
#   ("src", origin_func_id, chain)  -- real untrusted bytes; ``chain``
#       is the call path from the function currently holding the value
#       back to the source function, both inclusive;
#   ("param", index)                -- symbolic taint seeded on the
#       function's own parameters, used to derive the interprocedural
#       summary (return/sink parameter flow) without false findings.

Token = Tuple


class _TaintSummary:
    """What a caller needs to know about one callee."""

    __slots__ = ("returns", "return_params", "sink_params")

    def __init__(self) -> None:
        #: origin func id -> call chain (this func ... origin).
        self.returns: Dict[str, Tuple[str, ...]] = {}
        #: parameter indices whose taint flows to the return value.
        self.return_params: Set[int] = set()
        #: parameter index -> call chain (this func ... sink) for
        #: parameters that reach a sink un-sanitized.
        self.sink_params: Dict[int, Tuple[str, ...]] = {}

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, _TaintSummary)
            and self.returns == other.returns
            and self.return_params == other.return_params
            and self.sink_params == other.sink_params
        )


class _SinkHit:
    """One tainted value reaching a sink (pre-Finding form)."""

    __slots__ = ("func", "line", "origin", "taint_chain", "sink_chain")

    def __init__(self, func: FunctionInfo, line: int, origin: str,
                 taint_chain: Tuple[str, ...],
                 sink_chain: Tuple[str, ...]) -> None:
        self.func = func
        self.line = line
        self.origin = origin
        self.taint_chain = taint_chain
        self.sink_chain = sink_chain


class _TaintWalker:
    """Flow-sensitive walk of one function body."""

    def __init__(self, program: Program, roles: Dict[str, str],
                 summaries: Dict[str, _TaintSummary],
                 func: FunctionInfo) -> None:
        self.program = program
        self.roles = roles
        self.summaries = summaries
        self.func = func
        self.resolver = _FunctionVisitor(program, func.ctx, func)
        self.env: Dict[str, Set[Token]] = {}
        self.summary = _TaintSummary()
        self.hits: List[_SinkHit] = []
        self.params = _param_names(func)

    def run(self) -> None:
        for index in range(len(self.params)):
            self.env[self.params[index]] = {("param", index)}
        if self.func.node is not None:
            self.walk(self.func.node.body)

    # -- statements -----------------------------------------------------

    def walk(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self.stmt(stmt)

    def stmt(self, s: ast.stmt) -> None:
        if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef,
                          ast.ClassDef)):
            return  # nested defs are separate (unsummarized) units
        if isinstance(s, ast.Assign):
            tokens = self.eval_expr(s.value)
            for target in s.targets:
                self.assign(target, tokens)
        elif isinstance(s, ast.AnnAssign):
            if s.value is not None:
                self.assign(s.target, self.eval_expr(s.value))
        elif isinstance(s, ast.AugAssign):
            tokens = self.eval_expr(s.value)
            if isinstance(s.target, ast.Name):
                merged = self.env.get(s.target.id, set()) | tokens
                self.env[s.target.id] = merged
        elif isinstance(s, ast.Return):
            if s.value is not None:
                self.note_return(self.eval_expr(s.value))
        elif isinstance(s, ast.Expr):
            self.eval_expr(s.value)
        elif isinstance(s, (ast.If, ast.While)):
            self.eval_expr(s.test)
            self.walk(s.body)
            self.walk(s.orelse)
        elif isinstance(s, (ast.For, ast.AsyncFor)):
            self.assign(s.target, self.eval_expr(s.iter))
            self.walk(s.body)
            self.walk(s.orelse)
        elif isinstance(s, (ast.With, ast.AsyncWith)):
            for item in s.items:
                tokens = self.eval_expr(item.context_expr)
                if item.optional_vars is not None:
                    self.assign(item.optional_vars, tokens)
            self.walk(s.body)
        elif isinstance(s, ast.Try):
            self.walk(s.body)
            for handler in s.handlers:
                self.walk(handler.body)
            self.walk(s.orelse)
            self.walk(s.finalbody)
        elif isinstance(s, ast.Raise):
            if s.exc is not None:
                self.eval_expr(s.exc)
        elif isinstance(s, ast.Assert):
            self.eval_expr(s.test)
        elif isinstance(s, ast.Delete):
            for target in s.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
        # Pass/Break/Continue/Import/Global/Nonlocal: nothing to do.

    def assign(self, target: ast.expr, tokens: Set[Token]) -> None:
        if isinstance(target, ast.Name):
            # Strong update: reassignment replaces (and an untainted
            # RHS therefore clears) the name's taint.
            self.env[target.id] = set(tokens)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self.assign(elt, tokens)
        elif isinstance(target, ast.Starred):
            self.assign(target.value, tokens)
        # Attribute/Subscript targets: field taint is out of scope.

    def note_return(self, tokens: Set[Token]) -> None:
        for token in tokens:
            if token[0] == "src":
                self.summary.returns.setdefault(token[1], token[2])
            else:
                self.summary.return_params.add(token[1])

    # -- expressions ----------------------------------------------------

    def eval_expr(self, expr: ast.expr) -> Set[Token]:
        if isinstance(expr, ast.Name):
            return set(self.env.get(expr.id, ()))
        if isinstance(expr, ast.Call):
            return self.eval_call(expr)
        if isinstance(expr, ast.Attribute):
            # A field or method of a tainted object is tainted.
            return self.eval_expr(expr.value)
        if isinstance(expr, ast.Subscript):
            return self.eval_expr(expr.value) | self.eval_expr(expr.slice)
        if isinstance(expr, ast.Compare):
            for comparator in [expr.left] + list(expr.comparators):
                self.eval_expr(comparator)
            return set()  # a boolean verdict is not untrusted bytes
        if isinstance(expr, ast.Lambda):
            return set()
        if isinstance(expr, ast.NamedExpr):
            tokens = self.eval_expr(expr.value)
            self.assign(expr.target, tokens)
            return tokens
        tokens: Set[Token] = set()
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                tokens |= self.eval_expr(child)
            elif isinstance(child, ast.comprehension):
                self.assign(child.target, self.eval_expr(child.iter))
                for cond in child.ifs:
                    self.eval_expr(cond)
        return tokens

    def eval_call(self, call: ast.Call) -> Set[Token]:
        callee = self.resolver.resolve_callable(call.func)
        role = self.roles.get(callee) if callee is not None else None
        if role == ROLE_SANITIZER:
            # Verification: the arguments (and a method-style
            # sanitizer's receiver) are authenticated from here on.
            for arg in call.args:
                self.clear(arg)
            for keyword in call.keywords:
                self.clear(keyword.value)
            if isinstance(call.func, ast.Attribute):
                self.clear(call.func.value)
            return set()

        arg_tokens = [self.eval_expr(arg) for arg in call.args]
        kw_tokens = [
            (keyword.arg, self.eval_expr(keyword.value))
            for keyword in call.keywords
        ]
        line = call.lineno
        result: Set[Token] = set()

        if role == ROLE_SOURCE:
            result.add(("src", callee, (self.func.func_id, callee)))

        summary = (
            self.summaries.get(callee) if callee is not None else None
        )
        callee_func = (
            self.program.functions.get(callee)
            if callee is not None else None
        )
        if summary is not None and callee_func is not None:
            params = _param_names(callee_func)
            mapping: List[Tuple[int, Set[Token]]] = [
                (i, tokens) for i, tokens in enumerate(arg_tokens)
                if i < len(params)
            ]
            mapping.extend(
                (params.index(name), tokens)
                for name, tokens in kw_tokens
                if name is not None and name in params
            )
            for origin, chain in summary.returns.items():
                result.add((
                    "src", origin, (self.func.func_id,) + chain
                ))
            for index, tokens in mapping:
                if index in summary.return_params:
                    result |= tokens
                chain = summary.sink_params.get(index)
                if chain is not None:
                    self.flow_to_sink(
                        tokens, line, (self.func.func_id,) + chain
                    )
        if role == ROLE_SINK:
            everything: Set[Token] = set()
            for tokens in arg_tokens:
                everything |= tokens
            for _, tokens in kw_tokens:
                everything |= tokens
            self.flow_to_sink(
                everything, line, (self.func.func_id, callee)
            )
        return result

    def clear(self, expr: ast.expr) -> None:
        if isinstance(expr, ast.Name):
            self.env.pop(expr.id, None)
        elif isinstance(expr, ast.Starred):
            self.clear(expr.value)

    def flow_to_sink(self, tokens: Set[Token], line: int,
                     sink_chain: Tuple[str, ...]) -> None:
        for token in sorted(tokens):
            if token[0] == "src":
                self.hits.append(_SinkHit(
                    self.func, line, token[1], token[2], sink_chain
                ))
            else:
                self.summary.sink_params.setdefault(token[1], sink_chain)


def _taint_pass(
    program: Program, roles: Dict[str, str],
    summaries: Dict[str, _TaintSummary],
) -> Tuple[Dict[str, _TaintSummary], List[_SinkHit]]:
    next_summaries: Dict[str, _TaintSummary] = {}
    hits: List[_SinkHit] = []
    for func_id in sorted(program.functions):
        func = program.functions[func_id]
        walker = _TaintWalker(program, roles, summaries, func)
        walker.run()
        next_summaries[func_id] = walker.summary
        hits.extend(walker.hits)
    return next_summaries, hits


def _taint_analysis(
    program: Program, roles: Dict[str, str],
) -> List[_SinkHit]:
    summaries = {
        func_id: _TaintSummary() for func_id in program.functions
    }
    hits: List[_SinkHit] = []
    # The summaries grow monotonically (setdefault semantics), so the
    # fixpoint terminates; the bound is paranoia, not policy.
    for _ in range(12):
        next_summaries, hits = _taint_pass(program, roles, summaries)
        if all(
            next_summaries[f] == summaries[f] for f in summaries
        ):
            break
        summaries = next_summaries
    return hits


@register
class VerifyBeforeUseRule(ProgramRule):
    """Untrusted bytes must pass a sanitizer before reaching a sink.

    The paper's Algorithm 4 puts ``verify()`` between every ISP
    response and the query result; GlassDB-style deferred verification
    makes it easy to cache or return bytes first and verify later —
    which is sound only if the deferral is deliberate and paired with
    rollback.  This rule finds every flow from a ``taint-source`` to a
    ``taint-sink`` with no ``taint-sanitizer`` on the modeled path, so
    the deliberate deferrals carry written suppressions and everything
    else is an error.
    """

    name = "verify-before-use"
    description = (
        "values returned by '# repro: taint-source' functions must "
        "pass a taint-sanitizer before any argument position of a "
        "taint-sink, on every interprocedural path the call graph "
        "resolves"
    )
    invariant = (
        "query authentication soundness: nothing the ISP sent is "
        "served, cached, or persisted without verification against "
        "the on-chain certificate"
    )

    def check_program(
        self, contexts: Sequence[ModuleContext]
    ) -> Iterator[Finding]:
        program = _cached_program(contexts)
        roles = taint_roles(program)
        if not roles:
            return
        # One finding per (site, origin): a sink that forwards to an
        # inner sink (update -> insert) is still one decision point.
        seen: Set[Tuple[str, int, str]] = set()
        for hit in _taint_analysis(program, roles):
            sink = hit.sink_chain[-1]
            key = (hit.func.ctx.path, hit.line, hit.origin)
            if key in seen:
                continue
            seen.add(key)
            taint = " -> ".join(_short(f) for f in hit.taint_chain)
            reach = " -> ".join(_short(f) for f in hit.sink_chain)
            yield Finding(
                path=hit.func.ctx.path, line=hit.line, rule=self.name,
                message=(
                    f"untrusted bytes from {_short(hit.origin)} reach "
                    f"sink {_short(sink)} without a sanitizer "
                    f"(tainted via {taint}; sink path {reach})"
                ),
            )


# ----------------------------------------------------------------------
# Blocking effects
# ----------------------------------------------------------------------

#: Effect kinds, mildest first; "worst" is the right-most present.
EFFECT_ORDER = ("lock", "sleep", "fsync", "socket", "subprocess")

#: Unresolvable-receiver method names that are socket operations.
_SOCKET_METHODS = frozenset({"recv", "sendall", "accept"})


class _BlockSite:
    """One direct blocking primitive with the locks held around it."""

    __slots__ = ("kind", "detail", "line", "held")

    def __init__(self, kind: str, detail: str, line: int,
                 held: FrozenSet[str]) -> None:
        self.kind = kind
        self.detail = detail
        self.line = line
        self.held = held


class _WaitSite:
    """One unbounded wait (no timeout argument) — policy 2 material."""

    __slots__ = ("detail", "line")

    def __init__(self, detail: str, line: int) -> None:
        self.detail = detail
        self.line = line


class _SiteVisitor(_FunctionVisitor):
    """The concurrency walk, additionally recording blocking sites.

    Runs over a *shadow* :class:`FunctionInfo` so the acquisitions and
    call edges it re-derives do not double up on the real summaries.
    """

    def __init__(self, program: Program, ctx: ModuleContext,
                 shadow: FunctionInfo, blocking: List[_BlockSite],
                 waits: List[_WaitSite]) -> None:
        super().__init__(program, ctx, shadow)
        self.blocking = blocking
        self.waits = waits

    def visit_call(self, call: ast.Call) -> None:
        self.note_primitives(call)
        super().visit_call(call)

    def note_primitives(self, call: ast.Call) -> None:
        callee = self.resolve_callable(call.func)
        attr = (
            call.func.attr
            if isinstance(call.func, ast.Attribute) else None
        )
        kind: Optional[str] = None
        if callee == "time.sleep":
            kind = "sleep"
        elif callee == "os.fsync":
            kind = "fsync"
        elif callee is not None and (
            callee == "subprocess" or callee.startswith("subprocess.")
        ):
            kind = "subprocess"
        elif callee in ("socket.create_connection", "socket.socket"):
            kind = "socket"
        elif callee is None and attr in _SOCKET_METHODS:
            kind = "socket"
        if kind is not None:
            detail = callee if callee is not None else f".{attr}()"
            self.blocking.append(_BlockSite(
                kind, detail, call.lineno, self.held_set()
            ))
        self.note_unbounded_wait(call, callee, attr)

    def note_unbounded_wait(self, call: ast.Call,
                            callee: Optional[str],
                            attr: Optional[str]) -> None:
        has_timeout_kw = any(
            keyword.arg == "timeout" for keyword in call.keywords
        )
        if callee is None and attr in ("join", "wait"):
            if not call.args and not has_timeout_kw:
                self.waits.append(_WaitSite(
                    f"{attr}() without a timeout", call.lineno
                ))
            return
        if attr == "acquire" and not call.args and not call.keywords:
            if self.resolve_lock(call.func.value) is not None:
                self.waits.append(_WaitSite(
                    "lock acquire() without a timeout", call.lineno
                ))
            return
        if callee == "socket.create_connection":
            if len(call.args) < 2 and not has_timeout_kw:
                self.waits.append(_WaitSite(
                    "create_connection without a timeout", call.lineno
                ))
            return
        if attr == "settimeout" and len(call.args) == 1:
            arg = call.args[0]
            if isinstance(arg, ast.Constant) and arg.value is None:
                self.waits.append(_WaitSite(
                    "settimeout(None) disables the socket timeout",
                    call.lineno,
                ))


class _Sites:
    __slots__ = ("blocking", "waits")

    def __init__(self) -> None:
        self.blocking: List[_BlockSite] = []
        self.waits: List[_WaitSite] = []


def _collect_sites(program: Program) -> Dict[str, _Sites]:
    sites: Dict[str, _Sites] = {}
    for func_id, func in program.functions.items():
        entry = _Sites()
        sites[func_id] = entry
        if func.node is None:
            continue
        shadow = FunctionInfo(
            func.func_id, func.class_id, func.ctx, func.name, func.node
        )
        shadow.param_types = dict(func.param_types)
        shadow.local_types = dict(func.local_types)
        _SiteVisitor(
            program, func.ctx, shadow, entry.blocking, entry.waits
        ).visit_body(func.node.body)
    return sites


#: effect kind -> (call chain to the primitive, detail, line, path).
_Witness = Tuple[Tuple[str, ...], str, int, str]


def _effects(
    program: Program, sites: Dict[str, _Sites],
) -> Dict[str, Dict[str, _Witness]]:
    """Transitive blocking effects with a witness chain per kind."""
    effects: Dict[str, Dict[str, _Witness]] = {
        func_id: {} for func_id in program.functions
    }
    for func_id in sorted(program.functions):
        func = program.functions[func_id]
        for site in sites[func_id].blocking:
            effects[func_id].setdefault(site.kind, (
                (func_id,), site.detail, site.line, func.ctx.path
            ))
        if func.acquires:
            first = func.acquires[0]
            effects[func_id].setdefault("lock", (
                (func_id,), _short(first.lock), first.line,
                func.ctx.path,
            ))
    changed = True
    while changed:
        changed = False
        for func_id in sorted(program.functions):
            func = program.functions[func_id]
            mine = effects[func_id]
            for call in func.calls:
                if call.is_thread_target:
                    continue
                for kind, witness in effects.get(
                    call.callee, {}
                ).items():
                    if kind not in mine:
                        chain, detail, line, path = witness
                        mine[kind] = (
                            (func_id,) + chain, detail, line, path
                        )
                        changed = True
    return effects


def build_effect_table(
    contexts: Sequence[ModuleContext],
) -> Dict[str, object]:
    """The per-function blocking-effect table (JSON-ready).

    One entry per function with any inferred effect: the effect set,
    the worst effect, and a witness chain down to the primitive call.
    This is the work-list for the asyncio refactor of the serving path
    (ROADMAP item 2): anything listed here blocks an event loop.
    """
    program = _cached_program(contexts)
    sites = _collect_sites(program)
    effects = _effects(program, sites)
    rows: List[Dict[str, object]] = []
    for func_id in sorted(program.functions):
        kinds = effects[func_id]
        if not kinds:
            continue
        worst = max(kinds, key=EFFECT_ORDER.index)
        chain, detail, line, path = kinds[worst]
        rows.append({
            "function": func_id,
            "effects": sorted(kinds, key=EFFECT_ORDER.index),
            "worst": worst,
            "witness": {
                "chain": list(chain),
                "primitive": detail,
                "path": path,
                "line": line,
            },
        })
    return {"version": 1, "functions": rows}


@register
class BlockingEffectRule(ProgramRule):
    """No blocking under a SanLock; no unbounded wait on a deadline path.

    The serving path is thread-per-connection today, but its locks are
    shared: a holder of any DESIGN §8 ``SanLock`` that sleeps, fsyncs,
    or touches a socket stalls every queued thread for the duration
    (policy 1).  And since PR 7 every RPC carries a deadline — an
    unbounded ``join``/``wait``/``acquire``/connect anywhere on a
    deadline-carrying path is a budget the transport cannot enforce
    (policy 2).  Witness chains name the call path to the primitive.
    """

    name = "blocking-effect"
    description = (
        "no blocking primitive (sleep/fsync/socket/subprocess) while "
        "holding a SanLock from the DESIGN §8 inventory, and no "
        "unbounded wait (join/wait/acquire/connect without a timeout) "
        "reachable from a deadline-carrying function"
    )
    invariant = (
        "serving-path liveness under load: lock holders never block "
        "on I/O, and propagated deadlines bound every wait beneath "
        "them"
    )

    def check_program(
        self, contexts: Sequence[ModuleContext]
    ) -> Iterator[Finding]:
        program = _cached_program(contexts)
        sites = _collect_sites(program)
        entry_held = _entry_held(program)
        acq_star = _transitive_acquires(program)
        effects = _effects(program, sites)
        yield from self._policy_blocking_under_lock(
            program, sites, entry_held, acq_star, effects
        )
        yield from self._policy_deadline_waits(program, sites)

    def _policy_blocking_under_lock(
        self, program: Program, sites: Dict[str, _Sites],
        entry_held: Dict[str, FrozenSet[str]],
        acq_star: Dict[str, Set[str]],
        effects: Dict[str, Dict[str, _Witness]],
    ) -> Iterator[Finding]:
        san = program.san_locks
        if not san:
            return
        for func_id in sorted(program.functions):
            func = program.functions[func_id]
            base = entry_held.get(func_id, frozenset())
            for site in sites[func_id].blocking:
                held = (base | site.held) & san
                if held:
                    locks = ", ".join(sorted(_short(h) for h in held))
                    yield Finding(
                        path=func.ctx.path, line=site.line,
                        rule=self.name,
                        message=(
                            f"blocking {site.kind} ({site.detail}) in "
                            f"{func_id} while holding SanLock "
                            f"{locks}"
                        ),
                    )
            for call in func.calls:
                if call.is_thread_target:
                    continue
                callee_effects = {
                    kind: witness
                    for kind, witness in effects.get(
                        call.callee, {}
                    ).items()
                    if kind != "lock"
                }
                if not callee_effects:
                    continue
                held = (base | call.held) & san
                # Locks the callee itself acquires or demonstrably
                # enters with are its own (already reported) problem.
                held -= acq_star.get(call.callee, set())
                held -= entry_held.get(call.callee, frozenset())
                if not held:
                    continue
                worst = max(callee_effects, key=EFFECT_ORDER.index)
                chain, detail, line, _path = callee_effects[worst]
                rendered = " -> ".join(
                    _short(f) for f in (func_id,) + chain
                )
                locks = ", ".join(sorted(_short(h) for h in held))
                yield Finding(
                    path=func.ctx.path, line=call.line,
                    rule=self.name,
                    message=(
                        f"call blocks ({worst}: {detail} via "
                        f"{rendered}) while holding SanLock {locks}"
                    ),
                )

    def _policy_deadline_waits(
        self, program: Program, sites: Dict[str, _Sites],
    ) -> Iterator[Finding]:
        roots = {
            func_id for func_id, func in program.functions.items()
            if "deadline" in _param_names(func)
        }
        if not roots:
            return
        parent: Dict[str, str] = {}
        reached: Set[str] = set(roots)
        frontier = sorted(roots)
        while frontier:
            grown: List[str] = []
            for func_id in frontier:
                for call in program.functions[func_id].calls:
                    if call.is_thread_target:
                        continue
                    callee = call.callee
                    if (
                        callee in program.functions
                        and callee not in reached
                    ):
                        reached.add(callee)
                        parent[callee] = func_id
                        grown.append(callee)
            frontier = sorted(grown)
        for func_id in sorted(reached):
            func = program.functions[func_id]
            waits = sites[func_id].waits
            if not waits:
                continue
            chain = [func_id]
            while chain[-1] in parent:
                chain.append(parent[chain[-1]])
            rendered = " -> ".join(
                _short(f) for f in reversed(chain)
            )
            for wait in waits:
                yield Finding(
                    path=func.ctx.path, line=wait.line, rule=self.name,
                    message=(
                        f"unbounded wait ({wait.detail}) in {func_id} "
                        f"on a deadline-carrying path ({rendered}); "
                        "cap it with the remaining deadline budget"
                    ),
                )
