"""``repro.analysis`` — project-specific static invariant checking.

V²FS's soundness rests on boundaries that no unit test can watch
globally: all database I/O flows through the VFS interface, verified
bytes are the only bytes that reach query results, proof encodings are
byte-deterministic, ``SimulatedCrash`` is never absorbed, and every
failpoint call site targets a declared name.  This package enforces
those boundaries mechanically over the whole of ``src/`` with a small
from-scratch analyzer built on the stdlib :mod:`ast`:

* :mod:`repro.analysis.core` — findings, the rule registry, inline
  ``# repro: allow(<rule>) -- rationale`` suppressions, baseline
  handling, and the per-file driver;
* :mod:`repro.analysis.rules` — the V²FS rules (``vfs-boundary``,
  ``crash-hygiene``, ``proof-determinism``, ``failpoint-names``,
  ``typed-errors``);
* :mod:`repro.analysis.reporters` — stable human and JSON output;
* :mod:`repro.analysis.cli` — ``python -m repro lint``.

Each rule documents the paper invariant it protects; see DESIGN.md
§ "Static guarantees" for the mapping.
"""

from __future__ import annotations

from repro.analysis.core import (
    Finding,
    ModuleContext,
    Rule,
    all_rules,
    analyze_paths,
    analyze_source,
    load_baseline,
    register,
)

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "load_baseline",
    "register",
]
