"""Finding reporters: human text, machine-stable JSON, and SARIF.

All render the same sorted finding list ((path, line, rule, message) —
the :class:`~repro.analysis.core.Finding` dataclass ordering), so text
output diffs cleanly between runs, the JSON form is suitable for
baseline diffing in CI, and the SARIF form uploads as code-scanning
alerts that annotate pull requests in place.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.analysis.core import SEVERITY_ERROR, Finding, Rule


def render_text(findings: Sequence[Finding], *, verbose: bool = False) -> str:
    """One ``path:line: [rule] message`` line per finding + a summary."""
    lines: List[str] = []
    for finding in sorted(findings):
        prefix = "" if finding.severity == SEVERITY_ERROR else "warning: "
        lines.append(f"{finding.render()}" if not prefix else
                     f"{finding.path}:{finding.line}: warning: "
                     f"[{finding.rule}] {finding.message}")
    errors = sum(1 for f in findings if f.severity == SEVERITY_ERROR)
    warnings = len(findings) - errors
    if findings:
        lines.append(f"{errors} error(s), {warnings} warning(s)")
    else:
        lines.append("clean: no findings")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Stable JSON: sorted findings, sorted keys, newline-terminated."""
    payload = {
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "rule": f.rule,
                "severity": f.severity,
                "message": f.message,
            }
            for f in sorted(findings)
        ],
        "errors": sum(
            1 for f in findings if f.severity == SEVERITY_ERROR
        ),
        "warnings": sum(
            1 for f in findings if f.severity != SEVERITY_ERROR
        ),
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def render_sarif(
    findings: Sequence[Finding],
    rules: Optional[Sequence[Rule]] = None,
) -> str:
    """SARIF 2.1.0, the GitHub code-scanning upload format.

    Every registered rule appears in the driver's rule table (so alerts
    carry the invariant text even for rules with zero findings this
    run); results reference rules by index, locations are relative
    URIs, and the output is sorted/stable like the JSON reporter.
    """
    rule_list = sorted(rules or [], key=lambda rule: rule.name)
    rule_index: Dict[str, int] = {
        rule.name: index for index, rule in enumerate(rule_list)
    }
    descriptors = [
        {
            "id": rule.name,
            "shortDescription": {"text": rule.description},
            "fullDescription": {
                "text": f"Protects: {rule.invariant}"
            },
            "defaultConfiguration": {
                "level": (
                    "error" if rule.severity == SEVERITY_ERROR
                    else "warning"
                ),
            },
        }
        for rule in rule_list
    ]
    results = []
    for finding in sorted(findings):
        result = {
            "ruleId": finding.rule,
            "level": (
                "error" if finding.severity == SEVERITY_ERROR
                else "warning"
            ),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": max(1, finding.line),
                        },
                    }
                }
            ],
        }
        if finding.rule in rule_index:
            result["ruleIndex"] = rule_index[finding.rule]
        results.append(result)
    payload = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://example.invalid/repro/lint"
                        ),
                        "rules": descriptors,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
