"""Finding reporters: human text and machine-stable JSON.

Both render the same sorted finding list ((path, line, rule, message) —
the :class:`~repro.analysis.core.Finding` dataclass ordering), so text
output diffs cleanly between runs and the JSON form is suitable for
baseline diffing in CI.
"""

from __future__ import annotations

import json
from typing import List, Sequence

from repro.analysis.core import SEVERITY_ERROR, Finding


def render_text(findings: Sequence[Finding], *, verbose: bool = False) -> str:
    """One ``path:line: [rule] message`` line per finding + a summary."""
    lines: List[str] = []
    for finding in sorted(findings):
        prefix = "" if finding.severity == SEVERITY_ERROR else "warning: "
        lines.append(f"{finding.render()}" if not prefix else
                     f"{finding.path}:{finding.line}: warning: "
                     f"[{finding.rule}] {finding.message}")
    errors = sum(1 for f in findings if f.severity == SEVERITY_ERROR)
    warnings = len(findings) - errors
    if findings:
        lines.append(f"{errors} error(s), {warnings} warning(s)")
    else:
        lines.append("clean: no findings")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Stable JSON: sorted findings, sorted keys, newline-terminated."""
    payload = {
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "rule": f.rule,
                "severity": f.severity,
                "message": f.message,
            }
            for f in sorted(findings)
        ],
        "errors": sum(
            1 for f in findings if f.severity == SEVERITY_ERROR
        ),
        "warnings": sum(
            1 for f in findings if f.severity != SEVERITY_ERROR
        ),
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
