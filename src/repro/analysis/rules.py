"""The V²FS invariant rules.

Each rule states, in :attr:`~repro.analysis.core.Rule.invariant`, the
paper property it protects; DESIGN.md § "Static guarantees" carries the
full mapping.  Rules scope themselves by *dotted module name* (never by
filesystem path), so fixtures in tests can impersonate any module.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.analysis.core import (
    SEVERITY_WARNING,
    Finding,
    ModuleContext,
    Rule,
    register,
)
from repro.faults.catalog import FAILPOINTS, suggest
from repro.obs import catalog as obs_catalog


def _walk_with_functions(
    tree: ast.AST,
) -> Iterator[Tuple[ast.AST, Tuple[str, ...]]]:
    """Yield ``(node, enclosing-function-name-stack)`` pairs."""

    def visit(node: ast.AST, stack: Tuple[str, ...]) -> Iterator:
        yield node, stack
        child_stack = stack
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            child_stack = stack + (node.name,)
        for child in ast.iter_child_nodes(node):
            yield from visit(child, child_stack)

    yield from visit(tree, ())


def _dotted(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# ----------------------------------------------------------------------
# vfs-boundary
# ----------------------------------------------------------------------


@register
class VfsBoundaryRule(Rule):
    """All database I/O must flow through the VFS interface.

    The paper's compatibility claim (§ the virtual filesystem) is that
    an *unmodified* database engine becomes verifiable because every
    byte it reads arrives through the POSIX-style VFS, where V2FS
    authenticates it.  One raw ``open()`` inside the engine or the
    client would read bytes nobody verified.
    """

    name = "vfs-boundary"
    description = (
        "no raw file I/O (open/os.open/io.open/pathlib .open) inside "
        "repro.db or repro.client outside the whitelisted pager module"
    )
    invariant = (
        "database compatibility: every engine byte crosses the "
        "authenticated VFS boundary"
    )

    SCOPE = ("repro.db", "repro.client")
    #: The pager is the engine's single sanctioned file-layer module; it
    #: still goes through a VirtualFilesystem, but it is where any
    #: future direct-I/O fast path would legitimately live.
    WHITELIST = ("repro.db.pager",)

    _OS_IO_CALLS = {
        ("os", "open"), ("os", "fdopen"),
        ("io", "open"), ("io", "FileIO"),
    }
    _PATHLIB_METHODS = {
        "open", "read_bytes", "read_text", "write_bytes", "write_text"
    }

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package(*self.SCOPE) and not ctx.in_package(
            *self.WHITELIST
        )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open":
                yield ctx.finding(
                    node, self.name,
                    "raw open() bypasses the verifiable VFS; route file "
                    "I/O through a VirtualFilesystem",
                )
            elif isinstance(func, ast.Attribute):
                base = func.value
                if (
                    isinstance(base, ast.Name)
                    and (base.id, func.attr) in self._OS_IO_CALLS
                ):
                    yield ctx.finding(
                        node, self.name,
                        f"{base.id}.{func.attr}() bypasses the verifiable "
                        "VFS; route file I/O through a VirtualFilesystem",
                    )
                elif (
                    func.attr in self._PATHLIB_METHODS
                    and isinstance(base, ast.Call)
                    and isinstance(base.func, ast.Name)
                    and base.func.id in ("Path", "PurePath", "PosixPath")
                ):
                    yield ctx.finding(
                        node, self.name,
                        f"pathlib .{func.attr}() bypasses the verifiable "
                        "VFS; route file I/O through a VirtualFilesystem",
                    )


# ----------------------------------------------------------------------
# crash-hygiene
# ----------------------------------------------------------------------


@register
class CrashHygieneRule(Rule):
    """``SimulatedCrash`` and verification failures must propagate.

    ``SimulatedCrash`` subclasses :class:`BaseException` precisely so
    that ``except Exception`` recovery code cannot absorb a modeled
    power loss; a bare ``except:`` or ``except BaseException:`` defeats
    that design everywhere.  On the verification paths (merkle, isp,
    client, rpc) even ``except Exception`` is dangerous: a swallowed
    :class:`~repro.errors.VerificationError` is a successful attack.
    """

    name = "crash-hygiene"
    description = (
        "no bare except/except BaseException without a bare re-raise; "
        "except Exception on verification paths must re-raise or be "
        "explicitly allowed"
    )
    invariant = (
        "failure model (PR 2): a simulated crash or a failed integrity "
        "check can never be silently absorbed"
    )

    VERIFICATION_SCOPE = (
        "repro.merkle", "repro.isp", "repro.client", "repro.rpc"
    )

    @staticmethod
    def _catches(handler: ast.ExceptHandler, names: Tuple[str, ...]) -> bool:
        kind = handler.type
        kinds = kind.elts if isinstance(kind, ast.Tuple) else [kind]
        return any(
            isinstance(k, ast.Name) and k.id in names for k in kinds
        )

    @staticmethod
    def _has_raise(handler: ast.ExceptHandler, bare_only: bool) -> bool:
        for node in ast.walk(ast.Module(body=handler.body,
                                        type_ignores=[])):
            if isinstance(node, ast.Raise):
                if not bare_only or node.exc is None:
                    return True
        return False

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        on_verification_path = ctx.in_package(*self.VERIFICATION_SCOPE)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None or self._catches(
                node, ("BaseException",)
            ):
                if not self._has_raise(node, bare_only=True):
                    label = (
                        "bare except:" if node.type is None
                        else "except BaseException:"
                    )
                    yield ctx.finding(
                        node, self.name,
                        f"{label} can absorb SimulatedCrash; catch "
                        "concrete exceptions or re-raise unconditionally",
                    )
            elif on_verification_path and self._catches(
                node, ("Exception",)
            ):
                if not self._has_raise(node, bare_only=False):
                    yield ctx.finding(
                        node, self.name,
                        "except Exception on a verification path "
                        "swallows failures; narrow it to the concrete "
                        "expected exceptions, re-raise, or allow with "
                        "a rationale",
                    )


# ----------------------------------------------------------------------
# proof-determinism
# ----------------------------------------------------------------------


@register
class ProofDeterminismRule(Rule):
    """VO / proof / wire encodings must be byte-deterministic.

    The client accepts a certificate because ``pk_sgx`` signed exact
    bytes; prover and verifier independently re-serialize structures
    and compare digests.  Any nondeterminism in an encode path — wall
    clocks, unseeded randomness, or hash-seed-dependent set iteration —
    would make honest parties disagree about honest data.
    """

    name = "proof-determinism"
    description = (
        "no time/random/os.urandom and no unsorted set/dict iteration "
        "in the proof, VO, and wire-codec encode paths"
    )
    invariant = (
        "signature verifiability: the same structure always encodes to "
        "the same bytes on every machine"
    )

    SCOPE = ("repro.merkle.proof", "repro.isp.vo", "repro.rpc.codec")

    _BANNED_MODULES = ("time", "random", "secrets")
    _BANNED_CALLS = {"os.urandom", "uuid.uuid4", "uuid.uuid1"}
    _DICT_ITERATORS = {"items", "keys", "values"}
    _ENCODE_NAMES = {"to_bytes", "digest", "pack"}

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package(*self.SCOPE)

    @classmethod
    def _is_encode_function(cls, stack: Tuple[str, ...]) -> bool:
        return any(
            name.startswith(("encode", "_encode")) or name in
            cls._ENCODE_NAMES
            for name in stack
        )

    def _iterable_findings(
        self, ctx: ModuleContext, iterable: ast.expr, stack: Tuple[str, ...]
    ) -> Iterator[Finding]:
        if isinstance(iterable, (ast.Set, ast.SetComp)) or (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id in ("set", "frozenset")
        ):
            yield ctx.finding(
                iterable, self.name,
                "iterating a set here is hash-seed-dependent; sort it "
                "before it can influence encoded bytes",
            )
        elif (
            self._is_encode_function(stack)
            and isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Attribute)
            and iterable.func.attr in self._DICT_ITERATORS
            and not iterable.args and not iterable.keywords
        ):
            yield ctx.finding(
                iterable, self.name,
                f"unsorted .{iterable.func.attr}() iteration inside an "
                "encode path depends on insertion history; wrap it in "
                "sorted()",
            )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node, stack in _walk_with_functions(ctx.tree):
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted is None:
                    continue
                head = dotted.split(".", 1)[0]
                if head in self._BANNED_MODULES and "." in dotted:
                    yield ctx.finding(
                        node, self.name,
                        f"{dotted}() is nondeterministic and must not "
                        "feed a proof/VO/wire encoding",
                    )
                elif dotted in self._BANNED_CALLS:
                    yield ctx.finding(
                        node, self.name,
                        f"{dotted}() is nondeterministic and must not "
                        "feed a proof/VO/wire encoding",
                    )
            elif isinstance(node, ast.For):
                yield from self._iterable_findings(ctx, node.iter, stack)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for generator in node.generators:
                    yield from self._iterable_findings(
                        ctx, generator.iter, stack
                    )


# ----------------------------------------------------------------------
# failpoint-names
# ----------------------------------------------------------------------


@register
class FailpointNamesRule(Rule):
    """Every failpoint call site must target a declared name.

    The chaos harness arms failpoints by name; a call site whose
    literal is missing from :data:`repro.faults.FAILPOINTS` can never
    be armed, and a schedule naming it tests nothing.  The runtime
    mirror of this check lives in ``FailpointRegistry.arm``.
    """

    name = "failpoint-names"
    description = (
        "faults.fire/mangle/arm string literals must be declared in "
        "the repro.faults.FAILPOINTS catalog"
    )
    invariant = (
        "chaos coverage: every instrumented site is armable and every "
        "armable name reaches an instrumented site"
    )

    _HOOKS = {"fire", "mangle", "arm"}

    def applies_to(self, ctx: ModuleContext) -> bool:
        # The faults package itself manipulates names generically.
        return not ctx.in_package("repro.faults")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                hook = func.attr
            elif isinstance(func, ast.Name):
                hook = func.id
            else:
                continue
            if hook not in self._HOOKS or not node.args:
                continue
            first = node.args[0]
            if not (
                isinstance(first, ast.Constant)
                and isinstance(first.value, str)
            ):
                if isinstance(func, ast.Attribute) and _dotted(func) in (
                    "faults.fire", "faults.mangle", "faults.arm",
                    "registry.fire", "registry.mangle", "registry.arm",
                ):
                    yield ctx.finding(
                        node, self.name,
                        f"failpoint name passed to {hook}() is not a "
                        "string literal; the catalog check happens only "
                        "at runtime here",
                        severity=SEVERITY_WARNING,
                    )
                continue
            name = first.value
            if name not in FAILPOINTS:
                hint = suggest(name)
                yield ctx.finding(
                    node, self.name,
                    f"failpoint {name!r} is not declared in "
                    "repro.faults.FAILPOINTS"
                    + (f" (did you mean {hint[0]!r}?)" if hint else ""),
                )


# ----------------------------------------------------------------------
# obs-naming
# ----------------------------------------------------------------------


@register
class ObsNamingRule(Rule):
    """Every metric call site must target a declared scope.

    Experiments read counters from the registry by name; a call site
    whose literal is missing from :data:`repro.obs.SCOPES` accumulates
    counts no figure ever reads, and a figure reading an undeclared
    name reports zeros forever.  The runtime mirror of this check lives
    in ``MetricsRegistry._get``.
    """

    name = "obs-naming"
    description = (
        "obs.inc/add/observe/event/timed/set_gauge string literals "
        "must be declared in the repro.obs.SCOPES catalog"
    )
    invariant = (
        "observability coverage: every recorded scope is readable by "
        "name and every read name is recorded somewhere"
    )

    _HOOKS = {"inc", "add", "observe", "event", "timed", "set_gauge"}
    _RECEIVERS = ("obs", "metrics", "REGISTRY")

    def applies_to(self, ctx: ModuleContext) -> bool:
        # The obs package itself manipulates names generically.
        return not ctx.in_package("repro.obs")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in self._HOOKS or not node.args:
                continue
            dotted = _dotted(func)
            if dotted is None or dotted.split(".")[0] not in self._RECEIVERS:
                continue
            first = node.args[0]
            if not (
                isinstance(first, ast.Constant)
                and isinstance(first.value, str)
            ):
                suffix = self._dynamic_suffix(first)
                if suffix is not None:
                    if not obs_catalog.is_dynamic_suffix(suffix):
                        yield ctx.finding(
                            node, self.name,
                            f"f-string metric scope suffix {suffix!r} "
                            "is not declared in repro.obs."
                            "DYNAMIC_SCOPE_SUFFIXES",
                        )
                    elif not obs_catalog.dynamic_expansions(suffix):
                        yield ctx.finding(
                            node, self.name,
                            f"dynamic scope suffix {suffix!r} has no "
                            "concrete expansion in repro.obs.SCOPES",
                        )
                    continue
                yield ctx.finding(
                    node, self.name,
                    f"metric scope passed to {func.attr}() is not a "
                    "string literal; the catalog check happens only at "
                    "runtime here",
                    severity=SEVERITY_WARNING,
                )
                continue
            scope = first.value
            if not obs_catalog.is_declared(scope):
                hint = obs_catalog.suggest(scope)
                yield ctx.finding(
                    node, self.name,
                    f"metric scope {scope!r} is not declared in "
                    "repro.obs.SCOPES"
                    + (f" (did you mean {hint[0]!r}?)" if hint else ""),
                )

    @staticmethod
    def _dynamic_suffix(node: ast.AST) -> "Optional[str]":
        """Literal suffix of an ``f"{prefix}.suffix"`` metric scope.

        Only the exact two-part shape — one leading interpolation, one
        trailing string constant — is recognized; anything fancier
        stays a non-literal warning.
        """
        if not isinstance(node, ast.JoinedStr):
            return None
        parts = node.values
        if (
            len(parts) == 2
            and isinstance(parts[0], ast.FormattedValue)
            and isinstance(parts[1], ast.Constant)
            and isinstance(parts[1].value, str)
        ):
            return parts[1].value
        return None


# ----------------------------------------------------------------------
# typed-errors
# ----------------------------------------------------------------------


@register
class TypedErrorsRule(Rule):
    """Cross-subsystem failures must be typed.

    Callers route on the :mod:`repro.errors` hierarchy (the RPC layer
    even encodes it on the wire), so ``raise Exception`` or ``raise
    RuntimeError`` is a failure no boundary can classify — it turns a
    verification outcome into an anonymous crash.  Builtin contract
    errors (``ValueError``/``TypeError``/``KeyError``/
    ``NotImplementedError``) remain fine for local misuse.
    """

    name = "typed-errors"
    description = (
        "raise repro.errors types (or specific builtin contract "
        "errors), never Exception/BaseException/RuntimeError/"
        "AssertionError"
    )
    invariant = (
        "error taxonomy: every failure crossing a subsystem boundary "
        "is classifiable (and wire-encodable) by type"
    )

    _BANNED = ("Exception", "BaseException", "RuntimeError",
               "AssertionError")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            target = exc.func if isinstance(exc, ast.Call) else exc
            if isinstance(target, ast.Name) and target.id in self._BANNED:
                yield ctx.finding(
                    node, self.name,
                    f"raise {target.id} is untyped for callers; raise a "
                    "repro.errors subclass (or a specific builtin "
                    "contract error) instead",
                )
