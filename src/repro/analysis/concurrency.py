"""Interprocedural lock-discipline analysis: ``lock-order`` and
``guarded-by``.

The per-module rules in :mod:`repro.analysis.rules` are pure functions
of one syntax tree; concurrency discipline is not.  Whether
``IspServer._sessions`` may be touched on some line depends on which
locks every *transitive caller* holds, and whether two locks can
deadlock depends on acquisition orders scattered across modules.  This
module builds the whole-program substrate both rules share:

1. a **symbol index** over every analyzed module — classes (with
   resolved bases), functions, lock objects (attributes or module
   globals assigned ``threading.Lock()`` / ``RLock()`` / ``SanLock``),
   inferred attribute types (from constructor-parameter annotations
   and ``self.x = ClassName(...)`` assignments), and ``guarded-by``
   field annotations;
2. **per-function summaries** — lock acquisitions (``with lock:``
   blocks and bare ``.acquire()`` calls) with the locks already held
   at that point, resolved call edges (``self.m()``, module functions,
   attribute chains like ``self.isp.open_session()``, constructors,
   ``super()``), thread-spawn sites (``Thread(target=...)`` /
   ``SanThread``), and reads/writes of annotated fields;
3. two interprocedural fixpoints — ``H(f)``, the set of locks held on
   *every* path into ``f`` (the meet over call sites; a thread-spawn
   site contributes the empty set, because the child runs without the
   spawner's locks), and ``Acq*(f)``, the locks ``f`` acquires
   transitively.

On top of that substrate:

* **lock-order** derives the global lock-acquisition graph — an edge
  ``A -> B`` wherever ``B`` is acquired (directly or through a call)
  with ``A`` held — and reports every cycle as a potential deadlock;
* **guarded-by** checks that every access to a field annotated
  ``# repro: guarded-by(<lock>)`` happens with that lock in
  ``H(f) ∪ locally-held`` (accesses in the owning ``__init__`` are
  construction and exempt; ``writes`` mode exempts reads for
  deliberately lock-free-read structures).  Annotations naming an
  unknown lock are rejected with a did-you-mean hint, the same UX as
  ``failpoint-names``.

Lock identity is the *defining site* (``module.Class.attr`` or
``module.NAME``), matching the runtime sanitizer's ``SanLock.name``
granularity.  The analysis is deliberately conservative: a lock or
callee it cannot resolve contributes nothing — it can miss discipline
violations through reflection or untyped locals, but what it reports
is derived from real call paths.
"""

from __future__ import annotations

import ast
import difflib
import re
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.core import (
    Finding,
    ModuleContext,
    ProgramRule,
    register,
)

#: Method names whose call mutates the receiver collection in place.
_MUTATORS = frozenset({
    "append", "add", "insert", "extend", "update", "remove", "discard",
    "pop", "popitem", "clear", "setdefault", "sort", "reverse",
})

#: Constructor names that create a lock object.
_LOCK_FACTORIES = frozenset({"Lock", "RLock", "SanLock"})

#: Thread classes whose ``target=`` keyword spawns a new root.
_THREAD_FACTORIES = frozenset({"Thread", "SanThread"})

_GUARDED_BY_RE = re.compile(
    r"#\s*repro:\s*guarded-by\(\s*([A-Za-z_]\w*)"
    r"(?:\s*,\s*([A-Za-z_]\w*))?\s*\)"
)

_MODE_ALL = "all"
_MODE_WRITES = "writes"


def _dotted(node: ast.expr) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# ----------------------------------------------------------------------
# Index structures
# ----------------------------------------------------------------------


class ClassInfo:
    """Everything the analysis knows about one class."""

    __slots__ = ("class_id", "module", "name", "base_refs", "methods",
                 "lock_attrs", "attr_types", "annotated_fields")

    def __init__(self, class_id: str, module: str, name: str) -> None:
        self.class_id = class_id
        self.module = module
        self.name = name
        #: Unresolved base expressions (dotted strings).
        self.base_refs: List[str] = []
        self.methods: Set[str] = set()
        #: attr name -> lock id for ``self.x = Lock()`` assignments.
        self.lock_attrs: Dict[str, str] = {}
        #: attr name -> class id, inferred.
        self.attr_types: Dict[str, str] = {}
        #: attr name -> FieldAnnotation.
        self.annotated_fields: Dict[str, "FieldAnnotation"] = {}


class FieldAnnotation:
    """One ``# repro: guarded-by(lock[, mode])`` annotation."""

    __slots__ = ("class_id", "attr", "lock_name", "mode", "line", "path")

    def __init__(self, class_id: str, attr: str, lock_name: str,
                 mode: str, line: int, path: str) -> None:
        self.class_id = class_id
        self.attr = attr
        self.lock_name = lock_name
        self.mode = mode
        self.line = line
        self.path = path

    @property
    def field_id(self) -> str:
        return f"{self.class_id}.{self.attr}"


class CallSite:
    """One resolved call edge (or thread spawn) out of a function."""

    __slots__ = ("callee", "held", "line", "is_thread_target")

    def __init__(self, callee: str, held: FrozenSet[str], line: int,
                 is_thread_target: bool) -> None:
        self.callee = callee
        self.held = held
        self.line = line
        self.is_thread_target = is_thread_target


class Acquisition:
    """One lock acquisition site (with-block or bare ``.acquire()``)."""

    __slots__ = ("lock", "held", "line")

    def __init__(self, lock: str, held: FrozenSet[str], line: int) -> None:
        self.lock = lock
        self.held = held
        self.line = line


class FieldAccess:
    """One read/write of an annotated field."""

    __slots__ = ("field_id", "is_write", "held", "line")

    def __init__(self, field_id: str, is_write: bool,
                 held: FrozenSet[str], line: int) -> None:
        self.field_id = field_id
        self.is_write = is_write
        self.held = held
        self.line = line


class FunctionInfo:
    """The per-function summary both rules consume."""

    __slots__ = ("func_id", "class_id", "ctx", "name", "acquires",
                 "calls", "accesses", "param_types", "local_types",
                 "node")

    def __init__(self, func_id: str, class_id: Optional[str],
                 ctx: ModuleContext, name: str,
                 node: Optional[ast.AST] = None) -> None:
        self.func_id = func_id
        self.class_id = class_id
        self.ctx = ctx
        self.name = name
        self.acquires: List[Acquisition] = []
        self.calls: List[CallSite] = []
        self.accesses: List[FieldAccess] = []
        self.param_types: Dict[str, str] = {}
        self.local_types: Dict[str, str] = {}
        #: The function's own AST, for rules (dataflow) that need to
        #: re-walk the body with a different abstraction.
        self.node = node


class Program:
    """The fully indexed program: every module, one symbol space."""

    def __init__(self) -> None:
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: lock id -> defining (path, line).
        self.locks: Dict[str, Tuple[str, int]] = {}
        #: The subset of :attr:`locks` constructed via ``SanLock`` —
        #: the DESIGN §8 inventory the blocking-effect policy guards.
        self.san_locks: Set[str] = set()
        self.annotations: List[FieldAnnotation] = []
        #: Hygiene findings produced while indexing (bad annotations).
        self.index_findings: List[Finding] = []
        #: module name -> {local name -> dotted ref}.
        self.symbols: Dict[str, Dict[str, str]] = {}
        self._mro_cache: Dict[str, List[str]] = {}

    # -- symbol resolution ---------------------------------------------

    def resolve_class(self, module: str, name: str) -> Optional[str]:
        ref = self.symbols.get(module, {}).get(name, f"{module}.{name}")
        return ref if ref in self.classes else None

    def mro(self, class_id: str) -> List[str]:
        cached = self._mro_cache.get(class_id)
        if cached is not None:
            return cached
        order: List[str] = []
        seen: Set[str] = set()
        stack = [class_id]
        while stack:
            current = stack.pop(0)
            if current in seen or current not in self.classes:
                continue
            seen.add(current)
            order.append(current)
            info = self.classes[current]
            for base_ref in info.base_refs:
                resolved = self.symbols.get(info.module, {}).get(
                    base_ref, base_ref
                )
                if resolved in self.classes:
                    stack.append(resolved)
        self._mro_cache[class_id] = order
        return order

    def lookup_method(self, class_id: str, name: str) -> Optional[str]:
        for cid in self.mro(class_id):
            if name in self.classes[cid].methods:
                return f"{cid}.{name}"
        return None

    def lookup_attr_type(self, class_id: str, attr: str) -> Optional[str]:
        for cid in self.mro(class_id):
            hit = self.classes[cid].attr_types.get(attr)
            if hit is not None:
                return hit
        return None

    def lookup_lock_attr(self, class_id: str, attr: str) -> Optional[str]:
        for cid in self.mro(class_id):
            hit = self.classes[cid].lock_attrs.get(attr)
            if hit is not None:
                return hit
        return None

    def lookup_annotation(
        self, class_id: str, attr: str
    ) -> Optional[FieldAnnotation]:
        for cid in self.mro(class_id):
            hit = self.classes[cid].annotated_fields.get(attr)
            if hit is not None:
                return hit
        return None

    def known_lock_names(self, class_id: Optional[str],
                         module: str) -> List[str]:
        names: Set[str] = set()
        if class_id is not None:
            for cid in self.mro(class_id):
                names.update(self.classes[cid].lock_attrs)
        prefix = module + "."
        for lock_id in self.locks:
            if lock_id.startswith(prefix):
                remainder = lock_id[len(prefix):]
                if "." not in remainder:
                    names.add(remainder)
        return sorted(names)


# ----------------------------------------------------------------------
# Indexing pass 1: symbols, classes, locks, attribute types
# ----------------------------------------------------------------------


def _module_symbols(ctx: ModuleContext) -> Dict[str, str]:
    symbols: Dict[str, str] = {}
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                symbols[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
        elif isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                symbols[local] = alias.name
    for node in ctx.tree.body:
        if isinstance(node, (ast.ClassDef, ast.FunctionDef,
                             ast.AsyncFunctionDef)):
            symbols[node.name] = f"{ctx.module}.{node.name}"
    return symbols


def _lock_factory_name(call: ast.expr) -> Optional[str]:
    """``Lock``/``RLock``/``SanLock`` when ``call`` constructs a lock."""
    if not isinstance(call, ast.Call):
        return None
    dotted = _dotted(call.func)
    if dotted is None:
        return None
    last = dotted.rsplit(".", 1)[-1]
    return last if last in _LOCK_FACTORIES else None


def _is_lock_factory(call: ast.expr) -> bool:
    return _lock_factory_name(call) is not None


def _annotation_class_ref(node: Optional[ast.expr]) -> Optional[str]:
    """A dotted name from a parameter/attribute annotation, if simple.

    Plain names, dotted names, and string forward references resolve;
    ``Optional[X]``-style subscripts are out of scope on purpose.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        candidate = node.value.strip()
        return candidate if candidate.replace(".", "").isidentifier() \
            else None
    if isinstance(node, ast.Subscript):
        # Peel Optional[X]: the wrapped class is what the attribute
        # holds when it holds anything (other subscripted generics
        # stay out of scope — a Dict[int, X] is not an X).
        head = _dotted(node.value)
        if head is not None and head.rsplit(".", 1)[-1] == "Optional":
            return _annotation_class_ref(node.slice)
    return _dotted(node)


def _index_module(program: Program, ctx: ModuleContext) -> None:
    symbols = _module_symbols(ctx)
    program.symbols[ctx.module] = symbols
    for node in ctx.tree.body:
        if isinstance(node, ast.Assign) and _is_lock_factory(node.value):
            factory = _lock_factory_name(node.value)
            for target in node.targets:
                if isinstance(target, ast.Name):
                    lock_id = f"{ctx.module}.{target.id}"
                    program.locks[lock_id] = (ctx.path, node.lineno)
                    if factory == "SanLock":
                        program.san_locks.add(lock_id)
        if not isinstance(node, ast.ClassDef):
            continue
        class_id = f"{ctx.module}.{node.name}"
        info = ClassInfo(class_id, ctx.module, node.name)
        for base in node.bases:
            ref = _dotted(base)
            if ref is not None:
                info.base_refs.append(ref)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods.add(item.name)
            elif isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                ref = _annotation_class_ref(item.annotation)
                if ref is not None:
                    resolved = symbols.get(ref, f"{ctx.module}.{ref}")
                    info.attr_types[item.target.id] = resolved
        program.classes[class_id] = info


def _index_class_bodies(program: Program, ctx: ModuleContext) -> None:
    """Second sweep over class methods: lock attrs and attribute types
    (needs every class indexed first, so ``ClassName(...)`` resolves)."""
    symbols = program.symbols[ctx.module]
    for node in ctx.tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        info = program.classes[f"{ctx.module}.{node.name}"]
        for item in node.body:
            if not isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            param_types: Dict[str, str] = {}
            for arg in item.args.args + item.args.kwonlyargs:
                ref = _annotation_class_ref(arg.annotation)
                if ref is not None:
                    resolved = symbols.get(ref, ref)
                    if resolved in program.classes:
                        param_types[arg.arg] = resolved
            for stmt in ast.walk(item):
                if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                value = stmt.value
                for target in targets:
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    attr = target.attr
                    if value is not None and _is_lock_factory(value):
                        lock_id = f"{info.class_id}.{attr}"
                        info.lock_attrs[attr] = lock_id
                        program.locks[lock_id] = (ctx.path, stmt.lineno)
                        if _lock_factory_name(value) == "SanLock":
                            program.san_locks.add(lock_id)
                    elif isinstance(value, ast.Call):
                        ref = _dotted(value.func)
                        if ref is not None:
                            resolved = symbols.get(ref, ref)
                            if resolved in program.classes:
                                info.attr_types[attr] = resolved
                    elif isinstance(value, ast.Name):
                        hinted = param_types.get(value.id)
                        if hinted is not None:
                            info.attr_types[attr] = hinted
                    if isinstance(stmt, ast.AnnAssign):
                        ref = _annotation_class_ref(stmt.annotation)
                        if ref is not None:
                            resolved = symbols.get(ref, ref)
                            if resolved in program.classes:
                                info.attr_types[attr] = resolved


# ----------------------------------------------------------------------
# Indexing pass 2: guarded-by annotations (comment-level, via regex
# over source lines; strings cannot confuse it because the annotation
# must share a line with a real self-attribute assignment)
# ----------------------------------------------------------------------


def _field_assignment_lines(
    ctx: ModuleContext,
) -> Dict[int, Tuple[str, str]]:
    """line -> (class_id, attr) for every ``self.X = ...`` statement."""
    lines: Dict[int, Tuple[str, str]] = {}
    for node in ctx.tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        class_id = f"{ctx.module}.{node.name}"
        for stmt in ast.walk(node):
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    lines[stmt.lineno] = (class_id, target.attr)
    return lines


def _collect_annotations(program: Program, ctx: ModuleContext) -> None:
    assign_lines = _field_assignment_lines(ctx)
    for lineno, text in enumerate(ctx.lines, start=1):
        match = _GUARDED_BY_RE.search(text)
        if match is None:
            continue
        lock_name, mode = match.group(1), match.group(2) or _MODE_ALL
        owner = assign_lines.get(lineno)
        if owner is None:
            program.index_findings.append(Finding(
                path=ctx.path, line=lineno, rule=GuardedByRule.name,
                message=(
                    "guarded-by annotation is not attached to a "
                    "'self.<field> = ...' assignment line"
                ),
            ))
            continue
        class_id, attr = owner
        if mode not in (_MODE_ALL, _MODE_WRITES):
            program.index_findings.append(Finding(
                path=ctx.path, line=lineno, rule=GuardedByRule.name,
                message=(
                    f"guarded-by mode {mode!r} for field {attr!r} is "
                    f"unknown; expected '{_MODE_WRITES}' or "
                    f"'{_MODE_ALL}'"
                ),
            ))
            continue
        annotation = FieldAnnotation(
            class_id, attr, lock_name, mode, lineno, ctx.path
        )
        existing = program.classes[class_id].annotated_fields.get(attr)
        if existing is not None and (
            existing.lock_name != lock_name or existing.mode != mode
        ):
            program.index_findings.append(Finding(
                path=ctx.path, line=lineno, rule=GuardedByRule.name,
                message=(
                    f"field {attr!r} is annotated guarded-by"
                    f"({lock_name}) here but guarded-by"
                    f"({existing.lock_name}) elsewhere; pick one lock"
                ),
            ))
            continue
        program.classes[class_id].annotated_fields[attr] = annotation
        program.annotations.append(annotation)


def _resolve_annotation_locks(program: Program) -> None:
    """Turn annotation lock *names* into lock ids; reject unknowns."""
    resolved: List[FieldAnnotation] = []
    for annotation in program.annotations:
        info = program.classes[annotation.class_id]
        lock_id = program.lookup_lock_attr(
            annotation.class_id, annotation.lock_name
        )
        if lock_id is None:
            module_lock = f"{info.module}.{annotation.lock_name}"
            if module_lock in program.locks:
                lock_id = module_lock
        if lock_id is None:
            known = program.known_lock_names(
                annotation.class_id, info.module
            )
            hint = difflib.get_close_matches(
                annotation.lock_name, known, n=1, cutoff=0.5
            )
            program.index_findings.append(Finding(
                path=annotation.path, line=annotation.line,
                rule=GuardedByRule.name,
                message=(
                    f"guarded-by names unknown lock "
                    f"{annotation.lock_name!r} for field "
                    f"{annotation.attr!r}"
                    + (f" (did you mean {hint[0]!r}?)" if hint else "")
                    + "; locks are attributes assigned Lock()/RLock()/"
                      "SanLock() or module-level lock globals"
                ),
            ))
            continue
        annotation.lock_name = lock_id
        resolved.append(annotation)
    program.annotations = resolved


# ----------------------------------------------------------------------
# Summary pass: per-function lock/call/access facts
# ----------------------------------------------------------------------


class _FunctionVisitor:
    """Walks one function body tracking the held-lock stack."""

    def __init__(self, program: Program, ctx: ModuleContext,
                 func: FunctionInfo) -> None:
        self.program = program
        self.ctx = ctx
        self.func = func
        self.held: List[str] = []

    # -- resolution helpers --------------------------------------------

    def resolve_receiver(self, expr: ast.expr) -> Optional[str]:
        """The class id an expression evaluates to, if inferable."""
        if isinstance(expr, ast.Name):
            if expr.id in ("self", "cls") and self.func.class_id:
                return self.func.class_id
            hit = self.func.param_types.get(expr.id)
            if hit is not None:
                return hit
            return self.func.local_types.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self.resolve_receiver(expr.value)
            if base is not None:
                return self.program.lookup_attr_type(base, expr.attr)
            # module attribute: mod.ClassName
            dotted = _dotted(expr)
            if dotted is not None:
                symbols = self.program.symbols.get(self.ctx.module, {})
                head, _, rest = dotted.partition(".")
                ref = symbols.get(head)
                if ref is not None:
                    candidate = f"{ref}.{rest}" if rest else ref
                    if candidate in self.program.classes:
                        return candidate
            return None
        if isinstance(expr, ast.Call):
            if (
                isinstance(expr.func, ast.Name)
                and expr.func.id == "super"
                and self.func.class_id is not None
            ):
                mro = self.program.mro(self.func.class_id)
                return mro[1] if len(mro) > 1 else None
            ref = _dotted(expr.func)
            if ref is not None:
                symbols = self.program.symbols.get(self.ctx.module, {})
                resolved = symbols.get(ref, ref)
                if resolved in self.program.classes:
                    return resolved
        return None

    def resolve_lock(self, expr: ast.expr) -> Optional[str]:
        """The lock id a ``with``-expression names, if inferable."""
        if isinstance(expr, ast.Name):
            module_lock = f"{self.ctx.module}.{expr.id}"
            if module_lock in self.program.locks:
                return module_lock
            return None
        if isinstance(expr, ast.Attribute):
            owner = self.resolve_receiver(expr.value)
            if owner is not None:
                return self.program.lookup_lock_attr(owner, expr.attr)
        return None

    def resolve_callable(self, func: ast.expr) -> Optional[str]:
        """The function id a call expression targets, if inferable."""
        if isinstance(func, ast.Name):
            symbols = self.program.symbols.get(self.ctx.module, {})
            ref = symbols.get(func.id, f"{self.ctx.module}.{func.id}")
            if ref in self.program.classes:
                return self.program.lookup_method(ref, "__init__")
            # The functions dict is still filling during collection
            # (later modules are not summarized yet), so membership
            # cannot be checked here — return the candidate and let
            # the fixpoints drop refs that never resolve (builtins,
            # stdlib calls).
            return ref
        if isinstance(func, ast.Attribute):
            owner = self.resolve_receiver(func.value)
            if owner is not None:
                return self.program.lookup_method(owner, func.attr)
            dotted = _dotted(func)
            if dotted is not None and "." in dotted:
                symbols = self.program.symbols.get(self.ctx.module, {})
                head, _, rest = dotted.partition(".")
                ref = symbols.get(head)
                if ref is not None:
                    return f"{ref}.{rest}"
        return None

    # -- the walk -------------------------------------------------------

    def held_set(self) -> FrozenSet[str]:
        return frozenset(self.held)

    def visit_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self.visit_stmt(stmt)

    def visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.With):
            pushed = 0
            for item in stmt.items:
                lock = self.resolve_lock(item.context_expr)
                if lock is not None:
                    if lock not in self.held:
                        self.func.acquires.append(Acquisition(
                            lock, self.held_set(), stmt.lineno
                        ))
                    self.held.append(lock)
                    pushed += 1
                else:
                    self.visit_expr(item.context_expr)
            self.visit_body(stmt.body)
            for _ in range(pushed):
                self.held.pop()
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs are separate summary units
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self.visit_stmt(child)
            elif isinstance(child, ast.expr):
                self.visit_expr(child)
            else:
                self.visit_generic(child)

    def visit_generic(self, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                self.visit_stmt(child)
            elif isinstance(child, ast.expr):
                self.visit_expr(child)
            else:
                self.visit_generic(child)

    def visit_expr(self, expr: ast.expr) -> None:
        if isinstance(expr, ast.Call):
            self.visit_call(expr)
            return
        if isinstance(expr, ast.Attribute):
            # ast marks assignment/deletion targets with Store/Del ctx,
            # so `self.F = x` and `del self.F` classify as writes here.
            self.note_field_access(expr, is_write=isinstance(
                expr.ctx, (ast.Store, ast.Del)
            ))
            self.visit_expr(expr.value)
            return
        if isinstance(expr, ast.Subscript):
            # self.F[k] = v mutates the collection behind self.F even
            # though the inner Attribute itself has Load ctx.
            if isinstance(expr.value, ast.Attribute):
                self.note_field_access(
                    expr.value,
                    is_write=isinstance(expr.ctx, (ast.Store, ast.Del)),
                )
                self.visit_expr(expr.value.value)
            else:
                self.visit_expr(expr.value)
            self.visit_expr(expr.slice)
            return
        if isinstance(expr, ast.Lambda):
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self.visit_expr(child)
            else:
                self.visit_generic(child)

    def visit_call(self, call: ast.Call) -> None:
        dotted = _dotted(call.func)
        last = dotted.rsplit(".", 1)[-1] if dotted else None
        # Thread spawn: the target runs with no caller locks.
        if last in _THREAD_FACTORIES:
            for keyword in call.keywords:
                if keyword.arg == "target":
                    target = self.resolve_callable(keyword.value)
                    if target is None and isinstance(
                        keyword.value, ast.Attribute
                    ):
                        owner = self.resolve_receiver(keyword.value.value)
                        if owner is not None:
                            target = self.program.lookup_method(
                                owner, keyword.value.attr
                            )
                    if target is not None:
                        self.func.calls.append(CallSite(
                            target, frozenset(), call.lineno,
                            is_thread_target=True,
                        ))
        # Bare .acquire(): counts as an acquisition for lock ordering.
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "acquire"
        ):
            lock = self.resolve_lock(call.func.value)
            if lock is not None and lock not in self.held:
                self.func.acquires.append(Acquisition(
                    lock, self.held_set(), call.lineno
                ))
        # Mutating method on an annotated field: self.F.append(x) is a
        # write; any other method call on it (values(), items()) reads.
        receiver_noted = False
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _MUTATORS
            and isinstance(call.func.value, ast.Attribute)
        ):
            self.note_field_access(call.func.value, is_write=True)
            receiver_noted = True
        callee = self.resolve_callable(call.func)
        if callee is not None:
            self.func.calls.append(CallSite(
                callee, self.held_set(), call.lineno,
                is_thread_target=False,
            ))
        for arg in call.args:
            self.visit_expr(arg)
        for keyword in call.keywords:
            self.visit_expr(keyword.value)
        if isinstance(call.func, ast.Attribute):
            if receiver_noted:
                self.visit_expr(call.func.value.value)
            else:
                self.visit_expr(call.func.value)

    def note_field_access(self, attr: ast.Attribute,
                          is_write: bool) -> None:
        owner = self.resolve_receiver(attr.value)
        if owner is None:
            return
        annotation = self.program.lookup_annotation(owner, attr.attr)
        if annotation is None:
            return
        self.func.accesses.append(FieldAccess(
            annotation.field_id, is_write, self.held_set(), attr.lineno
        ))


def _collect_function(program: Program, ctx: ModuleContext,
                      node: ast.AST, func_id: str,
                      class_id: Optional[str]) -> None:
    func = FunctionInfo(func_id, class_id, ctx, node.name, node)
    symbols = program.symbols[ctx.module]
    for arg in node.args.args + node.args.kwonlyargs:
        ref = _annotation_class_ref(arg.annotation)
        if ref is not None:
            resolved = symbols.get(ref, ref)
            if resolved in program.classes:
                func.param_types[arg.arg] = resolved
    resolver = _FunctionVisitor(program, ctx, func)
    for stmt in ast.walk(node):
        if not (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
        ):
            continue
        target = stmt.targets[0].id
        if isinstance(stmt.value, ast.Call):
            ref = _dotted(stmt.value.func)
            if ref is not None:
                resolved = symbols.get(ref, ref)
                if resolved in program.classes:
                    func.local_types[target] = resolved
        elif isinstance(stmt.value, (ast.Attribute, ast.Name)):
            # Local alias of a typed attribute or parameter
            # (``cache = self.inter_cache``) — a single pass suffices
            # for the assign-then-use idiom; chained aliases that only
            # resolve on a later sweep stay unresolved (conservative).
            hit = resolver.resolve_receiver(stmt.value)
            if hit is not None:
                func.local_types.setdefault(target, hit)
    program.functions[func_id] = func
    _FunctionVisitor(program, ctx, func).visit_body(node.body)


def _collect_summaries(program: Program, ctx: ModuleContext) -> None:
    for node in ctx.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _collect_function(
                program, ctx, node, f"{ctx.module}.{node.name}", None
            )
        elif isinstance(node, ast.ClassDef):
            class_id = f"{ctx.module}.{node.name}"
            for item in node.body:
                if isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    _collect_function(
                        program, ctx, item,
                        f"{class_id}.{item.name}", class_id,
                    )


# ----------------------------------------------------------------------
# Interprocedural fixpoints
# ----------------------------------------------------------------------


def _is_private(func_id: str) -> bool:
    """Private helpers (one leading underscore, not dunders) are the
    only functions whose entry-held set may be derived from callers:
    anything public is assumed reachable from outside the analyzed
    tree (tests, API users) with no locks held."""
    name = func_id.rsplit(".", 1)[-1]
    return name.startswith("_") and not (
        name.startswith("__") and name.endswith("__")
    )


def _entry_held(program: Program) -> Dict[str, FrozenSet[str]]:
    """``H(f)``: locks held on every known path into ``f``.

    Meet-over-call-sites for private helpers; public functions, thread
    targets, and helpers with no known callers get the empty set.
    """
    sites: Dict[str, List[CallSite]] = {}
    for func in program.functions.values():
        for site in func.calls:
            if site.callee in program.functions:
                sites.setdefault(site.callee, []).append(site)
    universe = frozenset(program.locks)
    held: Dict[str, FrozenSet[str]] = {}
    for func_id in program.functions:
        held[func_id] = (
            universe
            if sites.get(func_id) and _is_private(func_id)
            else frozenset()
        )
    changed = True
    while changed:
        changed = False
        for func_id, in_sites in sites.items():
            if not _is_private(func_id):
                continue
            merged: Optional[FrozenSet[str]] = None
            for site in in_sites:
                caller = _caller_of(program, site, func_id)
                contribution = (
                    frozenset() if site.is_thread_target
                    else site.held | held.get(caller, frozenset())
                )
                merged = (
                    contribution if merged is None
                    else merged & contribution
                )
            merged = merged if merged is not None else frozenset()
            if merged != held[func_id]:
                held[func_id] = merged
                changed = True
    return held


def _caller_of(program: Program, site: CallSite, callee: str) -> str:
    # Call sites do not record their owner; rebuild lazily once.
    cache = getattr(program, "_site_owner", None)
    if cache is None:
        cache = {}
        for func in program.functions.values():
            for s in func.calls:
                cache[id(s)] = func.func_id
        program._site_owner = cache  # type: ignore[attr-defined]
    return cache[id(site)]


def _transitive_acquires(program: Program) -> Dict[str, Set[str]]:
    """``Acq*(f)``: locks acquired by ``f`` or any (non-thread) callee."""
    acq: Dict[str, Set[str]] = {
        func_id: {a.lock for a in func.acquires}
        for func_id, func in program.functions.items()
    }
    changed = True
    while changed:
        changed = False
        for func_id, func in program.functions.items():
            mine = acq[func_id]
            before = len(mine)
            for site in func.calls:
                if site.is_thread_target:
                    continue
                callee_acq = acq.get(site.callee)
                if callee_acq:
                    mine |= callee_acq
            if len(mine) != before:
                changed = True
    return acq


def build_program(contexts: Sequence[ModuleContext]) -> Program:
    """Index + summarize ``contexts`` as one program (both rules share
    the result through a one-entry cache keyed on the context set)."""
    program = Program()
    for ctx in contexts:
        _index_module(program, ctx)
    for ctx in contexts:
        _index_class_bodies(program, ctx)
    for ctx in contexts:
        _collect_annotations(program, ctx)
    _resolve_annotation_locks(program)
    for ctx in contexts:
        _collect_summaries(program, ctx)
    return program


_program_cache: List[Tuple[Tuple[int, ...], Program]] = []


def _cached_program(contexts: Sequence[ModuleContext]) -> Program:
    key = tuple(id(ctx) for ctx in contexts)
    for cached_key, cached in _program_cache:
        if cached_key == key:
            return cached
    program = build_program(contexts)
    _program_cache[:] = [(key, program)]
    return program


# ----------------------------------------------------------------------
# The rules
# ----------------------------------------------------------------------


def _short(lock_id: str) -> str:
    """``repro.isp.server.IspServer._lock`` -> ``IspServer._lock``."""
    parts = lock_id.rsplit(".", 2)
    return ".".join(parts[-2:]) if len(parts) >= 2 else lock_id


@register
class LockOrderRule(ProgramRule):
    """No cycles in the interprocedural lock-acquisition graph.

    Two threads taking the same pair of locks in opposite orders is a
    deadlock waiting for the right interleaving; Fig. 13b's
    update-vs-query interference runs exactly that experiment against
    the serving path.  The graph is derived over call edges, so a
    nesting hidden behind three helper calls still counts.  The
    runtime mirror lives in :class:`repro.sanitize.runtime.SanLock`.
    """

    name = "lock-order"
    description = (
        "the global lock-acquisition graph (with-blocks and acquire() "
        "calls, propagated across call edges) must be cycle-free"
    )
    invariant = (
        "liveness of the serving path: concurrent queries and "
        "sync_update ingestion can never deadlock"
    )

    def check_program(
        self, contexts: Sequence[ModuleContext]
    ) -> Iterator[Finding]:
        program = _cached_program(contexts)
        entry_held = _entry_held(program)
        acq_star = _transitive_acquires(program)
        # edge (A, B) -> (path, line, via-function) witness, first wins
        # in deterministic function order.
        edges: Dict[Tuple[str, str], Tuple[str, int, str]] = {}
        for func_id in sorted(program.functions):
            func = program.functions[func_id]
            base = entry_held.get(func_id, frozenset())
            for acquisition in func.acquires:
                for held in sorted(base | acquisition.held):
                    if held == acquisition.lock:
                        continue
                    edges.setdefault(
                        (held, acquisition.lock),
                        (func.ctx.path, acquisition.line, func_id),
                    )
            for site in func.calls:
                if site.is_thread_target:
                    continue
                inner = acq_star.get(site.callee)
                if not inner:
                    continue
                for held in sorted(base | site.held):
                    for lock in sorted(inner):
                        if held == lock:
                            continue
                        edges.setdefault(
                            (held, lock),
                            (func.ctx.path, site.line, func_id),
                        )
        yield from self._cycle_findings(edges)

    def _cycle_findings(
        self, edges: Dict[Tuple[str, str], Tuple[str, int, str]]
    ) -> Iterator[Finding]:
        graph: Dict[str, List[str]] = {}
        for src, dst in edges:
            graph.setdefault(src, []).append(dst)
        for successors in graph.values():
            successors.sort()
        reported: Set[FrozenSet[str]] = set()
        for start in sorted(graph):
            cycle = self._find_cycle(graph, start)
            if cycle is None:
                continue
            key = frozenset(cycle)
            if key in reported:
                continue
            reported.add(key)
            rendered = " -> ".join(
                _short(lock) for lock in cycle + [cycle[0]]
            )
            witnesses = "; ".join(
                f"{_short(a)} -> {_short(b)} in "
                f"{edges[(a, b)][2]}"
                for a, b in zip(cycle, cycle[1:] + [cycle[0]])
                if (a, b) in edges
            )
            path, line, _func = edges[(cycle[0], cycle[1])] if (
                (cycle[0], cycle[1]) in edges
            ) else next(iter(edges.values()))
            yield Finding(
                path=path, line=line, rule=self.name,
                message=(
                    f"lock-order cycle {rendered} is a potential "
                    f"deadlock ({witnesses})"
                ),
            )

    @staticmethod
    def _find_cycle(graph: Dict[str, List[str]],
                    start: str) -> Optional[List[str]]:
        """A cycle through ``start``, as a lock list, if one exists."""
        stack: List[Tuple[str, List[str]]] = [(start, [start])]
        seen: Set[str] = set()
        while stack:
            node, path = stack.pop()
            for succ in graph.get(node, ()):
                if succ == start:
                    return path
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, path + [succ]))
        return None


@register
class GuardedByRule(ProgramRule):
    """Annotated shared fields are only touched with their lock held.

    ``# repro: guarded-by(<lock>)`` on a field assignment declares the
    lock that protects it; every read/write anywhere in the program
    must then hold that lock, either locally or on every call path in
    (``H(f)``).  ``guarded-by(<lock>, writes)`` exempts reads — the
    documented pattern for structures whose readers are deliberately
    lock-free (snapshot-pinned session lookups, metric instrument
    lookups) and whose runtime races the sanitizer's write-only
    tracking still watches.  Accesses inside the owning class's
    ``__init__`` are construction, before the object can be shared.
    """

    name = "guarded-by"
    description = (
        "fields annotated '# repro: guarded-by(<lock>)' must only be "
        "accessed with that lock held on every interprocedural path; "
        "unknown lock names are rejected with a did-you-mean hint"
    )
    invariant = (
        "serving-path memory safety: the session table, page map, and "
        "instrument map cannot be torn by handler threads racing "
        "sync_update"
    )

    def check_program(
        self, contexts: Sequence[ModuleContext]
    ) -> Iterator[Finding]:
        program = _cached_program(contexts)
        yield from program.index_findings
        annotations = {
            annotation.field_id: annotation
            for annotation in program.annotations
        }
        if not annotations:
            return
        entry_held = _entry_held(program)
        for func_id in sorted(program.functions):
            func = program.functions[func_id]
            base = entry_held.get(func_id, frozenset())
            for access in func.accesses:
                annotation = annotations.get(access.field_id)
                if annotation is None:
                    continue
                if (
                    annotation.mode == _MODE_WRITES
                    and not access.is_write
                ):
                    continue
                if (
                    func.name == "__init__"
                    and func.class_id is not None
                    and annotation.class_id in program.mro(func.class_id)
                ):
                    continue
                held = base | access.held
                if annotation.lock_name in held:
                    continue
                kind = "write to" if access.is_write else "read of"
                held_note = (
                    f"holding only {sorted(_short(h) for h in held)}"
                    if held else "holding no lock"
                )
                yield Finding(
                    path=func.ctx.path, line=access.line,
                    rule=self.name,
                    message=(
                        f"{kind} {_short(access.field_id)} in "
                        f"{func_id} without its guarded-by lock "
                        f"{_short(annotation.lock_name)} "
                        f"({held_note} on some call path)"
                    ),
                )
