"""Analyzer core: findings, rules, suppressions, baselines, the driver.

The moving parts, in the order they act on a file:

1. the file is parsed once with :func:`ast.parse` into a
   :class:`ModuleContext` (tree + source lines + dotted module name);
2. every registered :class:`Rule` whose :meth:`Rule.applies_to` accepts
   the module walks the tree and yields :class:`Finding`\\ s;
3. inline suppressions (``# repro: allow(<rule>) -- rationale``) on the
   finding's line — or on a comment line directly above it — filter
   findings out; a suppression **must** carry a rationale after ``--``
   or it is itself reported (``suppression-rationale``), and a
   suppression that filtered nothing is reported as a warning
   (``unused-suppression``) so stale allowances cannot accumulate;
4. a baseline (a checked-in JSON file of grandfathered findings) is
   subtracted; whatever remains is reported.

Exit-code policy lives in :mod:`repro.analysis.cli`: error-severity
findings always fail, warnings fail only under ``--strict``.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

#: Findings synthesized by the core itself (not by a registered rule).
RULE_PARSE = "parse"
RULE_SUPPRESSION_RATIONALE = "suppression-rationale"
RULE_UNUSED_SUPPRESSION = "unused-suppression"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Ordering is (path, line, rule, message) — the stable sort key used
    by every reporter, so output is diffable across runs and machines.
    """

    path: str
    line: int
    rule: str
    message: str
    severity: str = SEVERITY_ERROR

    def key(self) -> Tuple[str, str, str]:
        """Baseline identity: deliberately line-number-free, so pure
        line drift does not invalidate a grandfathered finding."""
        return (self.path, self.rule, self.message)

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class ModuleContext:
    """Everything a rule may inspect about one parsed module."""

    def __init__(self, path: str, module: str, tree: ast.Module,
                 source: str) -> None:
        self.path = path
        #: Dotted module name (``repro.db.pager``) — rules scope on this,
        #: never on raw filesystem paths.
        self.module = module
        self.tree = tree
        self.source = source
        self.lines = source.splitlines()

    def finding(self, node: ast.AST, rule: str, message: str,
                severity: str = SEVERITY_ERROR) -> Finding:
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            rule=rule,
            message=message,
            severity=severity,
        )

    def in_package(self, *prefixes: str) -> bool:
        """True when the module sits under any of the dotted prefixes."""
        return any(
            self.module == p or self.module.startswith(p + ".")
            for p in prefixes
        )


class Rule:
    """Base class for one invariant check.

    Subclasses set :attr:`name`, :attr:`description`, and
    :attr:`invariant` (the paper property the rule protects), override
    :meth:`check`, and optionally narrow :meth:`applies_to`.
    """

    name: str = ""
    severity: str = SEVERITY_ERROR
    description: str = ""
    #: One line tying the rule to the V2FS soundness argument.
    invariant: str = ""

    def applies_to(self, ctx: ModuleContext) -> bool:
        return True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        if self.applies_to(ctx):
            yield from self.check(ctx)


class ProgramRule(Rule):
    """A rule that needs the *whole program*, not one module at a time.

    Per-module rules are pure functions of one tree; interprocedural
    properties (lock ordering across call edges, guarded-by discipline
    through helper functions) are not.  A ProgramRule receives every
    parsed :class:`ModuleContext` at once via :meth:`check_program`;
    the driver runs it after the per-module pass, and its findings go
    through the same suppression and baseline machinery (each finding's
    ``path`` must name one of the analyzed modules for suppressions to
    apply).
    """

    def check_program(
        self, contexts: Sequence["ModuleContext"]
    ) -> Iterator[Finding]:
        raise NotImplementedError

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        # Running a program rule over a single module is well-defined:
        # the program simply has one module (the fixture entry point).
        yield from self.check_program([ctx])


#: The process-wide rule registry, keyed by rule name.
_RULES: Dict[str, Rule] = {}


def register(rule_cls: type) -> type:
    """Class decorator adding a rule to the registry (instantiated once)."""
    rule = rule_cls()
    if not rule.name:
        raise ValueError(f"{rule_cls.__name__} has no rule name")
    if rule.name in _RULES:
        raise ValueError(f"duplicate rule name {rule.name!r}")
    _RULES[rule.name] = rule
    return rule_cls


def all_rules() -> List[Rule]:
    # Importing the rule modules populates the registry on first use.
    from repro.analysis import concurrency as _concurrency  # noqa: F401
    from repro.analysis import dataflow as _dataflow  # noqa: F401
    from repro.analysis import ownership as _ownership  # noqa: F401
    from repro.analysis import rules as _rules  # noqa: F401

    return [_RULES[name] for name in sorted(_RULES)]


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------

# Matches an allow(...) suppression comment with its optional rationale
# (the syntax is spelled out in this module's docstring, deliberately
# not here: a literal example would register as a real suppression).
_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow\(\s*([A-Za-z0-9_\-,\s]+?)\s*\)"
    r"(?:\s*--\s*(\S.*))?"
)


@dataclass
class Suppression:
    line: int
    #: The line the suppression shields: its own line for a trailing
    #: comment; the next statement line for a standalone comment block
    #: (rationales may continue over several comment lines).
    target: int
    rules: Tuple[str, ...]
    rationale: Optional[str]
    used: bool = False

    def covers(self, finding: Finding) -> bool:
        return (
            finding.rule in self.rules
            and finding.line in (self.line, self.target)
        )


def collect_suppressions(ctx: ModuleContext) -> List[Suppression]:
    """Scan real ``#`` comments (via :mod:`tokenize`, so the suppression
    syntax quoted inside strings or docstrings never counts)."""
    found: List[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(
            io.StringIO(ctx.source).readline
        ))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return found  # the parse rule already reports broken files
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _ALLOW_RE.search(token.string)
        if match is None:
            continue
        rules = tuple(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        lineno = token.start[0]
        target = lineno
        if token.line.strip().startswith("#"):
            # Standalone comment: shield the next statement line, past
            # any continuation of the rationale comment block.
            target = lineno + 1
            while target <= len(ctx.lines):
                text = ctx.lines[target - 1].strip()
                if text and not text.startswith("#"):
                    break
                target += 1
        found.append(Suppression(lineno, target, rules, match.group(2)))
    return found


def apply_suppressions(
    ctx: ModuleContext, findings: List[Finding],
    active_rules: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Filter suppressed findings; report suppression hygiene issues.

    ``active_rules`` names the rules this run actually executed (None
    means all).  A suppression naming only inactive rules is skipped
    entirely — neither applied nor reported unused — so a filtered
    ``lint --rule`` pass does not flag allowances that belong to the
    rules it deliberately did not run.
    """
    suppressions = collect_suppressions(ctx)
    # "Unknown rule" must mean unknown to the registry, not merely
    # not-yet-imported: force every rule module in before judging.
    all_rules()
    known = set(_RULES) | {
        RULE_PARSE, RULE_SUPPRESSION_RATIONALE, RULE_UNUSED_SUPPRESSION
    }
    if active_rules is not None:
        active = set(active_rules)
        # Keep suppressions that touch an active rule, plus any naming
        # an unknown rule: a typo'd allowance is a hygiene error no
        # matter which subset of rules this run executes.
        suppressions = [
            s for s in suppressions
            if active.intersection(s.rules)
            or any(r not in known for r in s.rules)
        ]
    kept: List[Finding] = []
    for finding in findings:
        covering = next(
            (s for s in suppressions if s.covers(finding)), None
        )
        if covering is None:
            kept.append(finding)
        else:
            covering.used = True
    for sup in suppressions:
        if sup.rationale is None:
            kept.append(Finding(
                path=ctx.path, line=sup.line,
                rule=RULE_SUPPRESSION_RATIONALE,
                message=(
                    "suppression has no rationale; write "
                    "'# repro: allow(rule) -- why this is sound'"
                ),
            ))
        for rule_name in sup.rules:
            if rule_name not in known:
                kept.append(Finding(
                    path=ctx.path, line=sup.line,
                    rule=RULE_UNUSED_SUPPRESSION,
                    message=f"suppression names unknown rule {rule_name!r}",
                    severity=SEVERITY_WARNING,
                ))
        if not sup.used:
            kept.append(Finding(
                path=ctx.path, line=sup.line,
                rule=RULE_UNUSED_SUPPRESSION,
                message=(
                    "suppression matched no finding "
                    f"({', '.join(sup.rules)}); remove it"
                ),
                severity=SEVERITY_WARNING,
            ))
    return kept


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------


def load_baseline(path: Path) -> List[Dict[str, str]]:
    """Load a baseline file: a JSON object with a ``findings`` list of
    ``{"path", "rule", "message"}`` entries (line numbers are excluded
    on purpose — see :meth:`Finding.key`)."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or not isinstance(
        data.get("findings"), list
    ):
        raise ValueError(
            f"{path}: baseline must be an object with a 'findings' list"
        )
    return data["findings"]


def subtract_baseline(
    findings: List[Finding], baseline: Iterable[Dict[str, str]]
) -> List[Finding]:
    """Remove baselined findings (multiset semantics: each baseline
    entry absorbs at most one finding)."""
    budget: Dict[Tuple[str, str, str], int] = {}
    for entry in baseline:
        key = (entry.get("path", ""), entry.get("rule", ""),
               entry.get("message", ""))
        budget[key] = budget.get(key, 0) + 1
    kept: List[Finding] = []
    for finding in findings:
        remaining = budget.get(finding.key(), 0)
        if remaining > 0:
            budget[finding.key()] = remaining - 1
        else:
            kept.append(finding)
    return kept


def baseline_entries(findings: Sequence[Finding]) -> List[Dict[str, str]]:
    """Render findings as sorted baseline entries (``--write-baseline``)."""
    entries = [
        {"path": f.path, "rule": f.rule, "message": f.message}
        for f in findings
    ]
    entries.sort(key=lambda e: (e["path"], e["rule"], e["message"]))
    return entries


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------


def module_name_for(path: Path) -> str:
    """Dotted module name for a source path (``src/repro/db/pager.py``
    -> ``repro.db.pager``); falls back to the stem for odd layouts."""
    parts = list(path.parts)
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    elif "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = [path.name]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or path.stem


def _run_rules(
    contexts: Sequence[ModuleContext],
    rules: Sequence[Rule],
) -> List[Finding]:
    """Per-module rules on each context, program rules once over all,
    then suppressions applied per module."""
    findings: List[Finding] = []
    for ctx in contexts:
        for rule in rules:
            if not isinstance(rule, ProgramRule):
                findings.extend(rule.run(ctx))
    program_scope = [
        (rule, [ctx for ctx in contexts if rule.applies_to(ctx)])
        for rule in rules if isinstance(rule, ProgramRule)
    ]
    for rule, scoped in program_scope:
        if scoped:
            findings.extend(rule.check_program(scoped))
    by_path: Dict[str, List[Finding]] = {}
    for finding in findings:
        by_path.setdefault(finding.path, []).append(finding)
    # A filtered run (lint --rule) must not flag suppressions that
    # belong to rules it did not execute; an unfiltered run sees every
    # registered rule, so the scoping is a no-op there.
    active = {rule.name for rule in rules}
    kept: List[Finding] = []
    for ctx in contexts:
        kept.extend(apply_suppressions(
            ctx, by_path.pop(ctx.path, []), active_rules=active
        ))
    for stray in by_path.values():  # findings on unanalyzed paths
        kept.extend(stray)
    return sorted(kept)


def analyze_source(
    source: str,
    *,
    module: str,
    path: str = "<fixture>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Analyze one source string (the test fixtures' entry point)."""
    return analyze_sources([(module, path, source)], rules=rules)


def parse_sources(
    named_sources: Sequence[Tuple[str, str, str]],
) -> Tuple[List[ModuleContext], List[Finding]]:
    """Parse ``(module, path, source)`` triples into contexts.

    Returns the parsed contexts plus parse-failure findings.  Split out
    from :func:`analyze_sources` so a caller (the CLI) can parse once
    and reuse the same context objects for both the rule pass and the
    effect-table export — identity reuse is what makes the program
    cache in :mod:`repro.analysis.concurrency` hit.
    """
    contexts: List[ModuleContext] = []
    findings: List[Finding] = []
    for module, path, source in named_sources:
        try:
            tree = ast.parse(source)
        except SyntaxError as error:
            findings.append(Finding(
                path=path, line=error.lineno or 1, rule=RULE_PARSE,
                message=f"syntax error: {error.msg}",
            ))
            continue
        contexts.append(ModuleContext(path, module, tree, source))
    return contexts, findings


def analyze_sources(
    named_sources: Sequence[Tuple[str, str, str]],
    *,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Analyze ``(module, path, source)`` triples as one program.

    The multi-module entry point for interprocedural rule fixtures: a
    test can hand the analyzer a whole miniature package and check
    cross-module call-graph reasoning.
    """
    contexts, findings = parse_sources(named_sources)
    findings.extend(_run_rules(
        contexts, rules if rules is not None else all_rules()
    ))
    return sorted(findings)


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def parse_paths(
    paths: Sequence[Path],
    *,
    root: Optional[Path] = None,
) -> Tuple[List[ModuleContext], List[Finding]]:
    """Read and parse every ``*.py`` under ``paths`` into contexts.

    Reported paths are made relative to ``root`` (default: the current
    directory) when possible, and always use ``/`` separators, so JSON
    output is stable across checkouts and platforms.
    """
    base = root if root is not None else Path.cwd()
    named_sources: List[Tuple[str, str, str]] = []
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        try:
            rel = file_path.resolve().relative_to(base.resolve())
        except ValueError:
            rel = file_path
        try:
            source = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as error:
            findings.append(Finding(
                path=rel.as_posix(), line=1, rule=RULE_PARSE,
                message=f"unreadable source file: {error}",
            ))
            continue
        named_sources.append(
            (module_name_for(file_path), rel.as_posix(), source)
        )
    contexts, parse_findings = parse_sources(named_sources)
    findings.extend(parse_findings)
    return contexts, findings


def analyze_paths(
    paths: Sequence[Path],
    *,
    rules: Optional[Sequence[Rule]] = None,
    root: Optional[Path] = None,
) -> List[Finding]:
    """Analyze every ``*.py`` under ``paths``; returns sorted findings.

    All files are parsed before any program rule runs, so
    interprocedural rules see the complete call graph.
    """
    contexts, findings = parse_paths(paths, root=root)
    findings.extend(_run_rules(
        contexts, rules if rules is not None else all_rules()
    ))
    return sorted(findings)
