"""Thread-confinement and resource-ownership analysis.

PR 9's event-loop server (:mod:`repro.serve`) rests on two invariants
that previously existed only as comments and a one-time hand audit:

1. **confinement** — per-connection state (the ``_Conn`` table, the
   batch queue, out-buffers, selector interest masks) is touched only
   by the selectors loop thread;
2. **ownership** — every acquired resource (admission slot, selector
   registration, socket, sanitizer arming) is released on every path,
   including exceptional ones, so a crashed handler can never wedge
   the verifiable serving path.

This module turns both into ``ProgramRule``\\ s over the PR 5 program
index (call graph, receiver/type inference, thread-spawn detection)
and the PR 8 blocking-site lattice:

* **thread-confinement** — ``# repro: confined-to(<role>)`` on a
  ``self.<field> = ...`` line declares the only thread role allowed to
  touch the field.  Each function's *role set* is computed from spawn
  roots: a ``Thread``/``SanThread`` ``target=`` is a root of the role
  declared by ``# repro: thread-role(<role>)`` on its ``def`` line
  (or ``thread:<name>`` if undeclared), public functions root the
  implicit ``main`` role, and roles propagate to every (non-spawn)
  callee.  An access to a confined field from a function reachable
  under any other role is an error carrying the spawn→call→access
  witness chain.

* **loop-blocking** — ``# repro: thread-role(<role>, nonblocking)``
  additionally forbids any blocking primitive of effect >= ``sleep``
  (PR 8's lattice: sleep/fsync/socket/subprocess; bare lock
  acquisition stays legal) anywhere reachable under that role.  The
  sanctioned exception — the completion-deque + wake-pipe pattern,
  where the loop drains nonblocking sockets it owns — is expressed as
  a sanitizer: ``# repro: loop-safe`` on a ``def`` line exempts that
  function's *own direct* socket-kind sites, and nothing else (its
  callees are still traversed, and sleep/fsync/subprocess are never
  excused).  ``selectors.select`` is invisible to the lattice by
  design: it is the loop's one legitimate wait.

* **must-release** — a per-function CFG evaluator (try/except/
  finally/with/return/raise aware; every call is a may-raise edge)
  checks declared acquire/release pairs and tracked value resources:

  - ``# repro: acquires(<resource>[, conditional])`` /
    ``# repro: releases(<resource>)`` on ``def`` lines declare named
    pairs (``_admit``/``_release``, ``arm``/``disarm``).  A
    ``conditional`` acquire only materializes in direct
    ``if f():`` / ``if not f():`` test position (any other shape is a
    documented miss, never a false positive).
  - socket factories (``socket.socket``, ``create_connection``,
    ``accept``) assigned to a plain name are tracked until
    ``.close()``/``.detach()`` or until they *escape* (stored into an
    attribute/subscript, returned, passed into a container or an
    unresolvable callee) — escape ends tracking silently, so only
    provable leaks are reported.
  - ``<sel>.register(sock)`` on a tracked socket opens a registration
    that ``unregister(sock)`` must close.
  - interprocedural summaries let wrappers count: a callee that
    releases/closes its ``i``-th parameter on every path transfers
    ownership; a function left holding a named resource on *every*
    exit is promoted to an acquirer (its callers inherit the
    obligation); holding on only *some* exits is the leak.

Deliberate conservatism, in the no-false-positive direction: except
handlers are assumed to catch everything their ``try`` body raises,
resources reaching any escape are no longer tracked, and resources
bound to anything but a plain local name are never tracked at all.
"""

from __future__ import annotations

import ast
import difflib
import re
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.concurrency import (
    FunctionInfo,
    Program,
    _cached_program,
    _dotted,
    _field_assignment_lines,
    _FunctionVisitor,
    _is_private,
    _short,
)
from repro.analysis.core import (
    Finding,
    ModuleContext,
    ProgramRule,
    register,
)
from repro.analysis.dataflow import _collect_sites, _param_names

ROLE_MAIN = "main"

_CONFINED_RE = re.compile(
    r"#\s*repro:\s*confined-to\(\s*([A-Za-z_][\w\-]*)\s*\)"
)
_THREAD_ROLE_RE = re.compile(
    r"#\s*repro:\s*thread-role\(\s*([A-Za-z_][\w\-]*)"
    r"(?:\s*,\s*(nonblocking))?\s*\)"
)
_LOOP_SAFE_RE = re.compile(r"#\s*repro:\s*loop-safe\b")
_ACQUIRES_RE = re.compile(
    r"#\s*repro:\s*acquires\(\s*([A-Za-z_][\w.\-]*)"
    r"(?:\s*,\s*(conditional))?\s*\)"
)
_RELEASES_RE = re.compile(
    r"#\s*repro:\s*releases\(\s*([A-Za-z_][\w.\-]*)\s*\)"
)

#: Socket-producing callables (dotted form, resolved via the symbol
#: table) whose direct ``name = ...`` assignment opens a tracked value
#: resource.
_SOCKET_FACTORIES = frozenset({
    "socket.socket", "socket.create_connection",
})

#: Method names that end a tracked value resource's lifetime.
_CLOSERS = frozenset({"close", "detach"})


def _def_line_match(func: FunctionInfo,
                    pattern: "re.Pattern[str]") -> Optional["re.Match[str]"]:
    """Match ``pattern`` on the ``def`` line or the line directly above
    (the same placement rule as ``taint-source`` annotations)."""
    node = func.node
    if node is None:
        return None
    for lineno in (node.lineno, node.lineno - 1):
        if not 1 <= lineno <= len(func.ctx.lines):
            continue
        match = pattern.search(func.ctx.lines[lineno - 1])
        if match is not None:
            return match
    return None


class ConfinedField:
    """One ``# repro: confined-to(<role>)`` annotation."""

    __slots__ = ("class_id", "attr", "role", "line", "path")

    def __init__(self, class_id: str, attr: str, role: str,
                 line: int, path: str) -> None:
        self.class_id = class_id
        self.attr = attr
        self.role = role
        self.line = line
        self.path = path

    @property
    def field_id(self) -> str:
        return f"{self.class_id}.{self.attr}"


class RoleDecl:
    """One ``# repro: thread-role(<role>[, nonblocking])`` function."""

    __slots__ = ("func_id", "role", "nonblocking", "line")

    def __init__(self, func_id: str, role: str, nonblocking: bool,
                 line: int) -> None:
        self.func_id = func_id
        self.role = role
        self.nonblocking = nonblocking
        self.line = line


class PairDecl:
    """One acquires/releases annotation on a function."""

    __slots__ = ("func_id", "resource", "conditional")

    def __init__(self, func_id: str, resource: str,
                 conditional: bool) -> None:
        self.func_id = func_id
        self.resource = resource
        self.conditional = conditional


class Ownership:
    """Every ownership-layer annotation, indexed."""

    def __init__(self) -> None:
        #: field id -> ConfinedField.
        self.confined: Dict[str, ConfinedField] = {}
        #: (class_id, attr) pairs for MRO-aware lookup.
        self.confined_by_class: Dict[str, Dict[str, ConfinedField]] = {}
        #: func id -> RoleDecl.
        self.role_decls: Dict[str, RoleDecl] = {}
        #: func ids carrying ``# repro: loop-safe``.
        self.loop_safe: Set[str] = set()
        #: func id -> PairDecl for acquirers / releasers.
        self.acquirers: Dict[str, PairDecl] = {}
        self.releasers: Dict[str, PairDecl] = {}
        #: rule name -> hygiene findings discovered while indexing.
        self.index_findings: Dict[str, List[Finding]] = {}

    def note(self, rule: str, finding: Finding) -> None:
        self.index_findings.setdefault(rule, []).append(finding)

    def lookup_confined(self, program: Program, class_id: str,
                        attr: str) -> Optional[ConfinedField]:
        for cid in program.mro(class_id):
            hit = self.confined_by_class.get(cid, {}).get(attr)
            if hit is not None:
                return hit
        return None


def _collect_ownership(program: Program,
                       contexts: Sequence[ModuleContext]) -> Ownership:
    own = Ownership()
    for ctx in contexts:
        assign_lines = _field_assignment_lines(ctx)
        for lineno, text in enumerate(ctx.lines, start=1):
            match = _CONFINED_RE.search(text)
            if match is None:
                continue
            role = match.group(1)
            owner = assign_lines.get(lineno)
            if owner is None:
                own.note(ThreadConfinementRule.name, Finding(
                    path=ctx.path, line=lineno,
                    rule=ThreadConfinementRule.name,
                    message=(
                        "confined-to annotation is not attached to a "
                        "'self.<field> = ...' assignment line"
                    ),
                ))
                continue
            class_id, attr = owner
            annotation = ConfinedField(class_id, attr, role, lineno,
                                       ctx.path)
            existing = own.confined_by_class.get(class_id, {}).get(attr)
            if existing is not None and existing.role != role:
                own.note(ThreadConfinementRule.name, Finding(
                    path=ctx.path, line=lineno,
                    rule=ThreadConfinementRule.name,
                    message=(
                        f"field {attr!r} is annotated confined-to"
                        f"({role}) here but confined-to"
                        f"({existing.role}) elsewhere; pick one role"
                    ),
                ))
                continue
            own.confined_by_class.setdefault(class_id, {})[attr] = \
                annotation
            own.confined[annotation.field_id] = annotation
    for func_id, func in program.functions.items():
        match = _def_line_match(func, _THREAD_ROLE_RE)
        if match is not None:
            own.role_decls[func_id] = RoleDecl(
                func_id, match.group(1), match.group(2) is not None,
                func.node.lineno,
            )
        if _def_line_match(func, _LOOP_SAFE_RE) is not None:
            own.loop_safe.add(func_id)
        match = _def_line_match(func, _ACQUIRES_RE)
        if match is not None:
            own.acquirers[func_id] = PairDecl(
                func_id, match.group(1), match.group(2) is not None
            )
        match = _def_line_match(func, _RELEASES_RE)
        if match is not None:
            own.releasers[func_id] = PairDecl(
                func_id, match.group(1), False
            )
    return own


# ----------------------------------------------------------------------
# Role reachability
# ----------------------------------------------------------------------


class RoleModel:
    """Which thread roles can reach each function, with witnesses."""

    def __init__(self) -> None:
        #: func id -> set of role names reachable there.
        self.roles: Dict[str, Set[str]] = {}
        #: role -> list of (root func id, spawner func id or None,
        #: spawn line or None) — how the role comes into existence.
        self.roots: Dict[str, List[Tuple[str, Optional[str],
                                         Optional[int]]]] = {}
        #: (func id, role) -> (caller func id, call line): the first
        #: discovered (deterministic) edge that carried the role in.
        self.parent: Dict[Tuple[str, str], Tuple[str, int]] = {}
        #: roles declared ``nonblocking``.
        self.nonblocking: Set[str] = set()

    def chain(self, func_id: str, role: str) -> List[Tuple[str, int]]:
        """The call path (func, line-called-at) from the role root down
        to ``func_id``, root first."""
        path: List[Tuple[str, int]] = []
        current = func_id
        seen = {current}
        while (current, role) in self.parent:
            caller, line = self.parent[(current, role)]
            path.append((current, line))
            if caller in seen:
                break
            seen.add(caller)
            current = caller
        path.append((current, 0))
        path.reverse()
        return path

    def render_chain(self, func_id: str, role: str) -> str:
        parts = [_short(f) for f, _line in self.chain(func_id, role)]
        return " -> ".join(parts)

    def spawn_note(self, role: str) -> str:
        roots = self.roots.get(role, [])
        for root, spawner, line in roots:
            if spawner is not None:
                return (
                    f"role {role!r} is spawned in {_short(spawner)} "
                    f"(line {line}, target {_short(root)})"
                )
        if roots:
            return f"role {role!r} roots at {_short(roots[0][0])}"
        return f"role {role!r} has no known spawn root"


def _build_roles(program: Program, own: Ownership) -> RoleModel:
    model = RoleModel()
    model.roles = {func_id: set() for func_id in program.functions}
    in_edges: Set[str] = set()
    for func in program.functions.values():
        for site in func.calls:
            if site.callee in program.functions:
                in_edges.add(site.callee)
    # Spawn roots: every thread target starts its declared role (or an
    # implicit thread:<name> role when undeclared).
    for func_id in sorted(program.functions):
        func = program.functions[func_id]
        for site in func.calls:
            if not site.is_thread_target:
                continue
            if site.callee not in program.functions:
                continue
            decl = own.role_decls.get(site.callee)
            role = decl.role if decl is not None else (
                f"thread:{site.callee.rsplit('.', 1)[-1]}"
            )
            model.roles[site.callee].add(role)
            model.roots.setdefault(role, []).append(
                (site.callee, func_id, site.line)
            )
    # Declared roles root themselves even if no spawn site is visible
    # (fixtures, indirection the spawn detection cannot see).
    for func_id, decl in own.role_decls.items():
        model.roles[func_id].add(decl.role)
        entries = model.roots.setdefault(decl.role, [])
        if not any(root == func_id for root, _s, _l in entries):
            entries.append((func_id, None, None))
        if decl.nonblocking:
            model.nonblocking.add(decl.role)
    # Main roots: public functions, plus private helpers with no known
    # callers (assumed reachable from tests / API users).
    for func_id in sorted(program.functions):
        if model.roles[func_id]:
            continue
        if not _is_private(func_id) or func_id not in in_edges:
            model.roles[func_id].add(ROLE_MAIN)
            model.roots.setdefault(ROLE_MAIN, []).append(
                (func_id, None, None)
            )
    # Union-propagate roles along non-spawn call edges (may-analysis),
    # recording the first parent edge per (callee, role) in sorted
    # caller order so witness chains are deterministic.
    changed = True
    while changed:
        changed = False
        for func_id in sorted(program.functions):
            func = program.functions[func_id]
            mine = model.roles[func_id]
            if not mine:
                continue
            for site in func.calls:
                if site.is_thread_target:
                    continue
                callee = site.callee
                if callee not in program.functions:
                    continue
                for role in sorted(mine):
                    if role not in model.roles[callee]:
                        model.roles[callee].add(role)
                        model.parent[(callee, role)] = (
                            func_id, site.line
                        )
                        changed = True
    return model


def build_role_table(
    contexts: Sequence[ModuleContext],
) -> Dict[str, object]:
    """The role-reachability table (JSON-ready, CI artifact).

    One row per declared role with its spawn roots, plus every
    function reachable under a non-``main`` role with its full role
    set — the worklist a reviewer checks before moving code between
    the loop thread and the worker pool.
    """
    program = _cached_program(contexts)
    own = _collect_ownership(program, contexts)
    model = _build_roles(program, own)
    roles_out = []
    for role in sorted(model.roots):
        if role == ROLE_MAIN:
            continue
        roles_out.append({
            "role": role,
            "nonblocking": role in model.nonblocking,
            "roots": [
                {"target": root, "spawned_in": spawner, "line": line}
                for root, spawner, line in model.roots[role]
            ],
        })
    functions_out = []
    for func_id in sorted(program.functions):
        roles = model.roles.get(func_id, set())
        extra = roles - {ROLE_MAIN}
        if not extra:
            continue
        functions_out.append({
            "function": func_id,
            "roles": sorted(roles),
        })
    return {
        "version": 1,
        "roles": roles_out,
        "functions": functions_out,
    }


# ----------------------------------------------------------------------
# thread-confinement
# ----------------------------------------------------------------------


class _ConfinedAccess:
    __slots__ = ("field_id", "is_write", "line")

    def __init__(self, field_id: str, is_write: bool, line: int) -> None:
        self.field_id = field_id
        self.is_write = is_write
        self.line = line


class _ConfinedVisitor(_FunctionVisitor):
    """The concurrency walk, recording confined-field accesses.

    Runs over a *shadow* :class:`FunctionInfo` so the call edges and
    acquisitions it re-derives do not double up on the real summaries
    (the same pattern as dataflow's ``_SiteVisitor``).
    """

    def __init__(self, program: Program, ctx: ModuleContext,
                 shadow: FunctionInfo, own: Ownership,
                 out: List[_ConfinedAccess]) -> None:
        super().__init__(program, ctx, shadow)
        self.own = own
        self.out = out

    def note_field_access(self, attr: ast.Attribute,
                          is_write: bool) -> None:
        super().note_field_access(attr, is_write)
        owner = self.resolve_receiver(attr.value)
        if owner is None:
            return
        annotation = self.own.lookup_confined(
            self.program, owner, attr.attr
        )
        if annotation is None:
            return
        self.out.append(_ConfinedAccess(
            annotation.field_id, is_write, attr.lineno
        ))


def _confined_accesses(
    program: Program, own: Ownership,
) -> Dict[str, List[_ConfinedAccess]]:
    accesses: Dict[str, List[_ConfinedAccess]] = {}
    if not own.confined:
        return accesses
    for func_id, func in program.functions.items():
        if func.node is None:
            continue
        out: List[_ConfinedAccess] = []
        shadow = FunctionInfo(
            func.func_id, func.class_id, func.ctx, func.name, func.node
        )
        shadow.param_types = dict(func.param_types)
        shadow.local_types = dict(func.local_types)
        _ConfinedVisitor(
            program, func.ctx, shadow, own, out
        ).visit_body(func.node.body)
        if out:
            accesses[func_id] = out
    return accesses


def _check_confinement(
    program: Program, own: Ownership, model: RoleModel,
) -> List[Finding]:
    findings = list(own.index_findings.get(
        ThreadConfinementRule.name, ()
    ))
    if not own.confined:
        return findings
    declared_roles = {d.role for d in own.role_decls.values()}
    known_roles = declared_roles | {ROLE_MAIN}
    for annotation in sorted(own.confined.values(),
                             key=lambda a: (a.path, a.line)):
        if annotation.role not in known_roles:
            hint = difflib.get_close_matches(
                annotation.role, sorted(known_roles), n=1, cutoff=0.5
            )
            findings.append(Finding(
                path=annotation.path, line=annotation.line,
                rule=ThreadConfinementRule.name,
                message=(
                    f"confined-to names unknown role "
                    f"{annotation.role!r} for field {annotation.attr!r}"
                    + (f" (did you mean {hint[0]!r}?)" if hint else "")
                    + "; roles are declared with "
                      "'# repro: thread-role(<role>)' on a thread "
                      "target's def line (plus the implicit 'main')"
                ),
            ))
    accesses = _confined_accesses(program, own)
    for func_id in sorted(accesses):
        func = program.functions[func_id]
        roles = model.roles.get(func_id, set())
        for access in accesses[func_id]:
            annotation = own.confined[access.field_id]
            # Construction in the owning class's __init__ happens
            # before the object is shared with any thread.
            if (
                func.name == "__init__"
                and func.class_id is not None
                and annotation.class_id in program.mro(func.class_id)
            ):
                continue
            wrong = sorted(roles - {annotation.role})
            if not wrong:
                continue
            kind = "write to" if access.is_write else "read of"
            role = wrong[0]
            chain = model.render_chain(func_id, role)
            extra = (
                f" (also on roles {', '.join(wrong[1:])})"
                if len(wrong) > 1 else ""
            )
            findings.append(Finding(
                path=func.ctx.path, line=access.line,
                rule=ThreadConfinementRule.name,
                message=(
                    f"{kind} {_short(access.field_id)} (confined to "
                    f"role {annotation.role!r}) in {func_id} is "
                    f"reachable on role {role!r}{extra}: "
                    f"{model.spawn_note(role)}; call path {chain}"
                ),
            ))
    return findings


# ----------------------------------------------------------------------
# loop-blocking
# ----------------------------------------------------------------------


def _check_loop_blocking(
    program: Program, own: Ownership, model: RoleModel,
) -> List[Finding]:
    findings: List[Finding] = []
    for func_id in sorted(own.loop_safe):
        decl_roles = model.roles.get(func_id, set())
        if not decl_roles & model.nonblocking:
            findings.append(Finding(
                path=program.functions[func_id].ctx.path,
                line=program.functions[func_id].node.lineno,
                rule=LoopBlockingRule.name,
                message=(
                    f"loop-safe on {func_id} is unreachable from any "
                    "nonblocking role; the annotation sanctions "
                    "nothing (remove it or spawn the function under a "
                    "'thread-role(<role>, nonblocking)' root)"
                ),
            ))
    if not model.nonblocking:
        return findings
    sites = _collect_sites(program)
    for func_id in sorted(program.functions):
        func = program.functions[func_id]
        roles = model.roles.get(func_id, set()) & model.nonblocking
        if not roles:
            continue
        blocking = [
            site for site in sites[func_id].blocking
            if site.kind != "lock"
        ]
        if not blocking:
            continue
        if func_id in own.loop_safe:
            # The sanctioned wake-pipe/nonblocking-socket pattern:
            # only this function's own direct socket operations are
            # excused; a sleep/fsync/subprocess is never loop-safe.
            blocking = [s for s in blocking if s.kind != "socket"]
        role = sorted(roles)[0]
        chain = model.render_chain(func_id, role)
        for site in blocking:
            findings.append(Finding(
                path=func.ctx.path, line=site.line,
                rule=LoopBlockingRule.name,
                message=(
                    f"blocking {site.kind} ({site.detail}) in "
                    f"{func_id} is reachable on nonblocking role "
                    f"{role!r}: {model.spawn_note(role)}; call path "
                    f"{chain}; move it to a worker or mark the "
                    "function '# repro: loop-safe' if it only drains "
                    "nonblocking sockets the loop owns"
                ),
            ))
    return findings


# ----------------------------------------------------------------------
# must-release: per-function CFG evaluation over ownership states
# ----------------------------------------------------------------------
#
# A *token* is one held obligation:
#   ("sock", line)        -- a socket opened by a tracked factory call;
#   ("reg", line)         -- a selector registration of a tracked sock;
#   ("res", R, line)      -- named resource R acquired at `line`;
#   ("seedres", R)        -- R symbolically held at entry, used only to
#                            derive the "releases R on every path"
#                            summary (never reported);
#   ("param", i)          -- the function's own i-th parameter, used to
#                            derive releases/escapes-param summaries.
#
# A *state* is a frozenset of (token, bound_name_or_None) pairs; the
# walker carries a *set of states* (path-sensitive through branches and
# try/except) and accumulates return/raise/break/continue outcomes.
# Every call is a may-raise edge: an acquire's raise edge carries the
# pre-state (the exception means nothing was acquired), a release's
# kill applies on both edges (``close()`` that raises still closed),
# and any other call's raise edge carries the current state — which is
# exactly how a leak on an exceptional path becomes visible.

Token = Tuple
State = FrozenSet[Tuple[Token, Optional[str]]]

_STATE_CAP = 64


class _ReleaseSummary:
    """What a caller needs to know about one callee's ownership."""

    __slots__ = ("acquires", "releases", "releases_param",
                 "escapes_param")

    def __init__(self) -> None:
        #: resource name -> True when the acquire is conditional.
        self.acquires: Dict[str, bool] = {}
        self.releases: Set[str] = set()
        #: parameter indices this function closes/releases on every
        #: path (ownership transfers in).
        self.releases_param: Set[int] = set()
        #: parameter indices that escape (stored, re-spawned, handed
        #: to something unresolvable) — callers stop tracking.
        self.escapes_param: Set[int] = set()

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, _ReleaseSummary)
            and self.acquires == other.acquires
            and self.releases == other.releases
            and self.releases_param == other.releases_param
            and self.escapes_param == other.escapes_param
        )


class _Outcomes:
    """Non-fall-through exits accumulated while walking a body."""

    __slots__ = ("ret", "raise_", "brk", "cont")

    def __init__(self) -> None:
        self.ret: Set[State] = set()
        self.raise_: Set[State] = set()
        self.brk: Set[State] = set()
        self.cont: Set[State] = set()

    def absorb(self, other: "_Outcomes") -> None:
        self.ret |= other.ret
        self.raise_ |= other.raise_
        self.brk |= other.brk
        self.cont |= other.cont


def _cap(states: Set[State]) -> Set[State]:
    if len(states) <= _STATE_CAP:
        return states
    merged: Set[Tuple[Token, Optional[str]]] = set()
    for state in states:
        merged |= state
    return {frozenset(merged)}


def _add(states: Set[State], pair: Tuple[Token, Optional[str]],
         ) -> Set[State]:
    return {frozenset(s | {pair}) for s in states}


def _drop_token(states: Set[State], predicate) -> Set[State]:
    return {
        frozenset(p for p in s if not predicate(p[0], p[1]))
        for s in states
    }


class _CfgWalker:
    """Evaluates one function body over ownership states."""

    def __init__(self, program: Program, own: Ownership,
                 summaries: Dict[str, _ReleaseSummary],
                 func: FunctionInfo, collect: bool) -> None:
        self.program = program
        self.own = own
        self.summaries = summaries
        self.func = func
        self.collect = collect
        shadow = FunctionInfo(
            func.func_id, func.class_id, func.ctx, func.name, func.node
        )
        shadow.param_types = dict(func.param_types)
        shadow.local_types = dict(func.local_types)
        self.resolver = _FunctionVisitor(program, func.ctx, shadow)
        self.params = _param_names(func)
        #: tokens that escaped anywhere (walker-global, conservative).
        self.escaped: Set[Token] = set()
        #: param indices genuinely released (closed), not just dropped.
        self.released_params: Set[int] = set()
        #: value/named tokens generated in this function body.
        self.acquired: Dict[Token, int] = {}
        self.summary = _ReleaseSummary()
        #: (token) -> set of exit-kind strings where it was still held.
        self.leaks: Dict[Token, Set[str]] = {}

    # -- helpers --------------------------------------------------------

    def bound_token(self, state: State, name: str) -> List[Token]:
        return [tok for tok, bound in state if bound == name]

    def any_bound(self, states: Set[State], name: str) -> bool:
        return any(
            bound == name for s in states for _tok, bound in s
        )

    def escape_name(self, states: Set[State], name: str) -> Set[State]:
        for s in states:
            for tok, bound in s:
                if bound == name:
                    self.escaped.add(tok)
        return _drop_token(states, lambda tok, bound: bound == name)

    def escape_names_in(self, states: Set[State],
                        expr: Optional[ast.expr]) -> Set[State]:
        if expr is None:
            return states
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and self.any_bound(
                states, node.id
            ):
                states = self.escape_name(states, node.id)
        return states

    def kill_name(self, states: Set[State], name: str) -> Set[State]:
        """A genuine release of whatever ``name`` holds."""
        for s in states:
            for tok, bound in s:
                if bound == name and tok[0] == "param":
                    self.released_params.add(tok[1])
        return _drop_token(
            states,
            lambda tok, bound: bound == name and tok[0] != "reg",
        )

    def kill_reg(self, states: Set[State], name: str) -> Set[State]:
        return _drop_token(
            states,
            lambda tok, bound: bound == name and tok[0] == "reg",
        )

    def kill_resource(self, states: Set[State],
                      resource: str) -> Set[State]:
        return _drop_token(
            states,
            lambda tok, bound: tok[0] in ("res", "seedres")
            and tok[1] == resource,
        )

    def unbind(self, states: Set[State], name: str) -> Set[State]:
        """Rebinding a name ends tracking of whatever it held (treated
        as an escape: conservative, never a finding)."""
        if self.any_bound(states, name):
            return self.escape_name(states, name)
        return states

    # -- expressions ----------------------------------------------------

    def eval_expr(self, expr: ast.expr, states: Set[State],
                  out: _Outcomes) -> Tuple[Set[State], List[Token]]:
        """Returns (post-states, value-tokens the expression produces).

        Only a *direct* factory/accept call produces tokens a caller
        may bind; tokens produced in any nested position are dropped
        (never tracked), so they can never be reported."""
        if isinstance(expr, ast.Call):
            return self.eval_call(expr, states, out)
        if isinstance(expr, ast.Lambda):
            return states, []
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                states, _gen = self.eval_expr(child, states, out)
            elif isinstance(child, ast.comprehension):
                states, _gen = self.eval_expr(child.iter, states, out)
                for cond in child.ifs:
                    states, _gen = self.eval_expr(cond, states, out)
        return states, []

    def _callee_of(self, call: ast.Call) -> Tuple[Optional[str],
                                                  Optional[str]]:
        callee = self.resolver.resolve_callable(call.func)
        attr = (
            call.func.attr
            if isinstance(call.func, ast.Attribute) else None
        )
        return callee, attr

    def _callee_summary(
        self, callee: Optional[str]
    ) -> Optional[_ReleaseSummary]:
        if callee is None or callee not in self.program.functions:
            return None
        return self.summaries.get(callee)

    def _apply_arg_policy(self, call: ast.Call, callee: Optional[str],
                          states: Set[State]) -> Set[State]:
        """Escape/release/keep for tracked names in argument position.

        The receiver of a method call is *borrowed* (``conn.settimeout``
        keeps ownership where it is); arguments follow the callee's
        summary when the callee resolves and maps, and escape
        otherwise."""
        summary = self._callee_summary(callee)
        callee_func = (
            self.program.functions.get(callee)
            if callee is not None else None
        )
        mappable = (
            summary is not None
            and callee_func is not None
            and callee_func.node is not None
            and callee_func.node.args.vararg is None
            and callee_func.node.args.kwarg is None
            and not any(isinstance(a, ast.Starred) for a in call.args)
            and all(k.arg is not None for k in call.keywords)
        )
        params = (
            _param_names(callee_func) if mappable else []
        )
        slots: List[Tuple[Optional[int], ast.expr]] = []
        for index, arg in enumerate(call.args):
            slots.append((
                index if mappable and index < len(params) else None,
                arg,
            ))
        for keyword in call.keywords:
            idx = (
                params.index(keyword.arg)
                if mappable and keyword.arg in params else None
            )
            slots.append((idx, keyword.value))
        for idx, arg in slots:
            if isinstance(arg, ast.Name) and self.any_bound(
                states, arg.id
            ):
                if mappable and idx is not None:
                    if idx in summary.releases_param:
                        states = self.kill_name(states, arg.id)
                        states = self.kill_reg(states, arg.id)
                    elif idx in summary.escapes_param:
                        states = self.escape_name(states, arg.id)
                    # else: borrowed, tracking continues.
                else:
                    states = self.escape_name(states, arg.id)
            else:
                # Names nested deeper (containers, f-strings, calls)
                # escape: the value is out of our hands.
                states = self.escape_names_in(states, arg)
        return states

    def eval_call(self, call: ast.Call, states: Set[State],
                  out: _Outcomes,
                  suppress_acquire: bool = False,
                  ) -> Tuple[Set[State], List[Token]]:
        # Arguments evaluate first (nested calls raise before the
        # outer call runs).
        for arg in call.args:
            states, _gen = self.eval_expr(arg, states, out)
        for keyword in call.keywords:
            states, _gen = self.eval_expr(keyword.value, states, out)
        if isinstance(call.func, ast.Attribute):
            states, _gen = self.eval_expr(call.func.value, states, out)

        callee, attr = self._callee_of(call)
        line = call.lineno
        gen: List[Token] = []

        receiver_name = (
            call.func.value.id
            if isinstance(call.func, ast.Attribute)
            and isinstance(call.func.value, ast.Name) else None
        )
        first_arg_name = (
            call.args[0].id
            if call.args and isinstance(call.args[0], ast.Name)
            else None
        )

        # Selector registration pairing on a tracked socket.
        if attr == "register" and first_arg_name is not None and \
                self.any_bound(states, first_arg_name):
            out.raise_ |= _cap(set(states))
            tok = ("reg", line)
            self.acquired[tok] = line
            states = _add(states, (tok, first_arg_name))
            states = self._apply_mask_args(call, states, out)
            return _cap(states), []
        if attr == "unregister" and first_arg_name is not None:
            states = self.kill_reg(states, first_arg_name)
            out.raise_ |= _cap(set(states))
            return _cap(states), []

        # Releases: kill on both the normal and the exceptional edge
        # (a close() that raises still closed the descriptor; the
        # `try: x.close() except OSError: pass` idiom stays clean).
        if attr in _CLOSERS and receiver_name is not None and \
                self.any_bound(states, receiver_name):
            states = self.kill_name(states, receiver_name)
            out.raise_ |= _cap(set(states))
            return _cap(states), []

        # Named-resource effects through the callee's summary.
        summary = self._callee_summary(callee)
        if summary is not None and summary.releases:
            for resource in sorted(summary.releases):
                states = self.kill_resource(states, resource)
        states = self._apply_arg_policy(call, callee, states)
        if summary is not None and summary.acquires and \
                not suppress_acquire:
            out.raise_ |= _cap(set(states))
            for resource, conditional in sorted(
                summary.acquires.items()
            ):
                if conditional:
                    continue  # only if-test position materializes
                tok = ("res", resource, line)
                self.acquired[tok] = line
                states = _add(states, (tok, None))
            return _cap(states), []

        # Value-resource factories.
        if callee in _SOCKET_FACTORIES or attr == "accept":
            out.raise_ |= _cap(set(states))  # pre-state: not acquired
            tok = ("sock", line)
            self.acquired[tok] = line
            return _cap(states), [tok]
        if callee == "socket.socketpair":
            out.raise_ |= _cap(set(states))
            first: Token = ("sock", line)
            second: Token = ("sock", -line)
            self.acquired[first] = line
            self.acquired[second] = line
            return _cap(states), [first, second]

        out.raise_ |= _cap(set(states))
        return _cap(states), []

    def _apply_mask_args(self, call: ast.Call, states: Set[State],
                         out: _Outcomes) -> Set[State]:
        """register(sock, mask, data=...): remaining args may embed
        tracked names (data=conn keeps the *conn*, not the sock)."""
        for arg in call.args[1:]:
            states = self.escape_names_in(states, arg)
        for keyword in call.keywords:
            states = self.escape_names_in(states, keyword.value)
        return states

    # -- statements -----------------------------------------------------

    def walk_body(self, body: Sequence[ast.stmt],
                  states: Set[State]) -> Tuple[Set[State], _Outcomes]:
        out = _Outcomes()
        current = _cap(set(states))
        for stmt in body:
            if not current:
                break
            current = self.stmt(stmt, current, out)
        return _cap(current), out

    def stmt(self, s: ast.stmt, states: Set[State],
             out: _Outcomes) -> Set[State]:
        if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef,
                          ast.ClassDef)):
            return states
        if isinstance(s, ast.Assign):
            states, gen = self._eval_value(s.value, states, out)
            for target in s.targets:
                states = self.assign_target(target, s.value, gen,
                                            states)
            return states
        if isinstance(s, ast.AnnAssign):
            if s.value is None:
                return states
            states, gen = self._eval_value(s.value, states, out)
            return self.assign_target(s.target, s.value, gen, states)
        if isinstance(s, ast.AugAssign):
            states, _gen = self.eval_expr(s.value, states, out)
            return states
        if isinstance(s, ast.Expr):
            states, _gen = self._eval_value(s.value, states, out)
            return states
        if isinstance(s, ast.Return):
            if s.value is not None:
                states, _gen = self.eval_expr(s.value, states, out)
                states = self.escape_names_in(states, s.value)
            out.ret |= states
            return set()
        if isinstance(s, ast.Raise):
            if s.exc is not None:
                states, _gen = self.eval_expr(s.exc, states, out)
                states = self.escape_names_in(states, s.exc)
            out.raise_ |= states
            return set()
        if isinstance(s, ast.Break):
            out.brk |= states
            return set()
        if isinstance(s, ast.Continue):
            out.cont |= states
            return set()
        if isinstance(s, ast.If):
            return self.stmt_if(s, states, out)
        if isinstance(s, ast.While):
            return self.stmt_loop(s, states, out, test=s.test)
        if isinstance(s, (ast.For, ast.AsyncFor)):
            states, _gen = self.eval_expr(s.iter, states, out)
            for node in ast.walk(s.target):
                if isinstance(node, ast.Name):
                    states = self.unbind(states, node.id)
            return self.stmt_loop(s, states, out, test=None)
        if isinstance(s, (ast.With, ast.AsyncWith)):
            return self.stmt_with(s, states, out)
        if isinstance(s, ast.Try):
            return self.stmt_try(s, states, out)
        if isinstance(s, ast.Assert):
            states, _gen = self.eval_expr(s.test, states, out)
            return states
        if isinstance(s, ast.Delete):
            for target in s.targets:
                if isinstance(target, ast.Name):
                    states = self.unbind(states, target.id)
            return states
        # Import/Global/Nonlocal/Pass and anything exotic: evaluate
        # any immediate expression children for their raise edges.
        for child in ast.iter_child_nodes(s):
            if isinstance(child, ast.expr):
                states, _gen = self.eval_expr(child, states, out)
        return states

    def _eval_value(self, value: ast.expr, states: Set[State],
                    out: _Outcomes) -> Tuple[Set[State], List[Token]]:
        """A direct call in value position may produce bindable tokens."""
        if isinstance(value, ast.Call):
            return self.eval_call(value, states, out)
        return self.eval_expr(value, states, out)

    def assign_target(self, target: ast.expr, value: ast.expr,
                      gen: List[Token],
                      states: Set[State]) -> Set[State]:
        if isinstance(target, ast.Name):
            states = self.unbind(states, target.id)
            if len(gen) == 1:
                states = _add(states, (gen[0], target.id))
            elif isinstance(value, ast.Name):
                # Aliasing ends tracking (conservative, silent).
                states = self.escape_names_in(states, value)
            return _cap(states)
        if isinstance(target, (ast.Tuple, ast.List)):
            names = [
                elt.id if isinstance(elt, ast.Name) else None
                for elt in target.elts
            ]
            for name in names:
                if name is not None:
                    states = self.unbind(states, name)
            if len(gen) == len(names):
                # socketpair() into (a, b)
                for token, name in zip(gen, names):
                    if name is not None:
                        states = _add(states, (token, name))
            elif len(gen) == 1 and names and names[0] is not None:
                # sock, addr = listener.accept()
                states = _add(states, (gen[0], names[0]))
            elif isinstance(value, ast.Name):
                states = self.escape_names_in(states, value)
            return _cap(states)
        # Attribute / Subscript / Starred target: the value escapes
        # (generated tokens stay unbound and are never reported).
        states = self.escape_names_in(states, value)
        return states

    def _cond_acquire(
        self, test: ast.expr
    ) -> Tuple[Optional[ast.Call], bool]:
        call: Optional[ast.Call] = None
        negated = False
        if isinstance(test, ast.UnaryOp) and isinstance(
            test.op, ast.Not
        ) and isinstance(test.operand, ast.Call):
            call, negated = test.operand, True
        elif isinstance(test, ast.Call):
            call = test
        if call is None:
            return None, False
        callee, _attr = self._callee_of(call)
        summary = self._callee_summary(callee)
        if summary is None or not summary.acquires:
            return None, False
        return call, negated

    def stmt_if(self, s: ast.If, states: Set[State],
                out: _Outcomes) -> Set[State]:
        call, negated = self._cond_acquire(s.test)
        if call is not None:
            # ``if f():`` / ``if not f():`` over an acquirer: the
            # acquired token exists only on the success branch.
            states, _gen = self.eval_call(
                call, states, out, suppress_acquire=True
            )
            callee, _attr = self._callee_of(call)
            summary = self._callee_summary(callee)
            acq_states = states
            for resource, conditional in sorted(
                summary.acquires.items()
            ):
                tok: Token = ("res", resource, call.lineno)
                self.acquired[tok] = call.lineno
                acq_states = _add(acq_states, (tok, None))
                if not conditional:
                    states = _add(states, (tok, None))
            body_in = states if negated else acq_states
            else_in = acq_states if negated else states
        else:
            states, _gen = self.eval_expr(s.test, states, out)
            body_in = else_in = states
        body_fall, body_out = self.walk_body(s.body, body_in)
        out.absorb(body_out)
        if s.orelse:
            else_fall, else_out = self.walk_body(s.orelse, else_in)
            out.absorb(else_out)
        else:
            else_fall = else_in
        return _cap(body_fall | else_fall)

    def stmt_loop(self, s: ast.stmt, states: Set[State],
                  out: _Outcomes,
                  test: Optional[ast.expr]) -> Set[State]:
        head = _cap(set(states))
        brk: Set[State] = set()
        for _ in range(8):
            entry = head
            if test is not None:
                entry, _gen = self.eval_expr(test, entry, out)
            body_fall, body_out = self.walk_body(s.body, entry)
            out.ret |= body_out.ret
            out.raise_ |= body_out.raise_
            brk |= body_out.brk
            new_head = _cap(head | body_fall | body_out.cont)
            if new_head == head:
                break
            head = new_head
        after = head
        if s.orelse:
            else_fall, else_out = self.walk_body(s.orelse, head)
            out.absorb(else_out)
            after = else_fall
        return _cap(after | brk)

    def stmt_with(self, s: ast.stmt, states: Set[State],
                  out: _Outcomes) -> Set[State]:
        cleanup: List[str] = []
        for item in s.items:
            if isinstance(item.context_expr, ast.Call):
                states, gen = self.eval_call(
                    item.context_expr, states, out
                )
            else:
                states, gen = self.eval_expr(
                    item.context_expr, states, out
                )
            if isinstance(item.optional_vars, ast.Name):
                name = item.optional_vars.id
                states = self.unbind(states, name)
                if len(gen) == 1:
                    # ``with create_connection(..) as s:`` —
                    # __exit__ closes on every path out of the body.
                    states = _add(states, (gen[0], name))
                    cleanup.append(name)
        body_fall, body_out = self.walk_body(s.body, states)
        for name in cleanup:
            body_fall = self.kill_name(body_fall, name)
            body_out.ret = self.kill_name(body_out.ret, name)
            body_out.raise_ = self.kill_name(body_out.raise_, name)
            body_out.brk = self.kill_name(body_out.brk, name)
            body_out.cont = self.kill_name(body_out.cont, name)
        out.absorb(body_out)
        return body_fall

    def stmt_try(self, s: ast.Try, states: Set[State],
                 out: _Outcomes) -> Set[State]:
        body_fall, body_out = self.walk_body(s.body, states)
        pre = _Outcomes()
        pre.ret |= body_out.ret
        pre.brk |= body_out.brk
        pre.cont |= body_out.cont
        fall = body_fall
        if s.orelse:
            else_fall, else_out = self.walk_body(s.orelse, body_fall)
            pre.absorb(else_out)  # else raises bypass these handlers
            fall = else_fall
        if s.handlers:
            # Handlers are assumed to catch everything the body
            # raises (no exception-type narrowing): a miss in the
            # propagate direction, never a false positive.
            entry = body_out.raise_
            for handler in s.handlers:
                if handler.name is not None:
                    entry = self.unbind(entry, handler.name)
                h_fall, h_out = self.walk_body(handler.body, entry)
                fall = fall | h_fall
                pre.absorb(h_out)
        else:
            pre.raise_ |= body_out.raise_
        if s.finalbody:
            fall, fin_out = self.walk_body(s.finalbody, fall)
            out.absorb(fin_out)
            for kind in ("ret", "raise_", "brk", "cont"):
                entry = getattr(pre, kind)
                if not entry:
                    continue
                k_fall, k_out = self.walk_body(s.finalbody, entry)
                out.absorb(k_out)
                setattr(out, kind,
                        getattr(out, kind) | k_fall)
        else:
            out.absorb(pre)
        return _cap(fall)

    # -- the run --------------------------------------------------------

    def run(self, universe: Set[str]) -> None:
        node = self.func.node
        if node is None:
            return
        init: Set[Tuple[Token, Optional[str]]] = set()
        for index, name in enumerate(self.params):
            init.add((("param", index), name))
        for resource in sorted(universe):
            init.add((("seedres", resource), None))
        fall, out = self.walk_body(node.body, {frozenset(init)})
        normal = fall | out.ret
        exceptional = out.raise_
        escaped_params = {
            tok[1] for tok in self.escaped if tok[0] == "param"
        }
        self.summary.escapes_param = set(escaped_params)
        if normal:
            for resource in sorted(universe):
                if all(
                    (("seedres", resource), None) not in s
                    for s in normal
                ):
                    self.summary.releases.add(resource)
            for index in sorted(self.released_params):
                if index in escaped_params:
                    continue
                if all(
                    all(tok != ("param", index) for tok, _b in s)
                    for s in normal
                ):
                    self.summary.releases_param.add(index)
            # Promotion: a *private helper* holding a named resource
            # on every normal exit is an acquirer its callers inherit
            # (an _enter-style wrapper).  Public functions get no such
            # benefit of the doubt — nobody is obliged to call their
            # release counterpart, so holding on every exit is the
            # leak, not an idiom.
            if _is_private(self.func.func_id):
                by_resource: Dict[str, List[Token]] = {}
                for tok in self.acquired:
                    if tok[0] == "res":
                        by_resource.setdefault(tok[1], []).append(tok)
                for resource, tokens in sorted(by_resource.items()):
                    if all(
                        any((tok, None) in s for tok in tokens)
                        for s in normal
                    ):
                        self.summary.acquires[resource] = False
        if not self.collect:
            return
        promoted = set(self.summary.acquires)
        for kind, exit_states in (("return", normal),
                                  ("exception", exceptional)):
            for state in exit_states:
                for tok, _bound in state:
                    if tok[0] in ("param", "seedres"):
                        continue
                    if tok in self.escaped:
                        continue
                    if tok[0] == "res" and tok[1] in promoted:
                        continue
                    self.leaks.setdefault(tok, set()).add(kind)

    def leak_findings(self, own: Ownership) -> List[Finding]:
        findings: List[Finding] = []
        releaser_for: Dict[str, str] = {}
        for func_id, decl in sorted(own.releasers.items()):
            releaser_for.setdefault(decl.resource, func_id)
        for tok in sorted(self.leaks, key=repr):
            kinds = "/".join(sorted(self.leaks[tok]))
            line = self.acquired.get(tok, 0)
            if tok[0] == "sock":
                label = f"socket opened at line {line}"
                advice = "close it on every path (try/finally)"
            elif tok[0] == "reg":
                label = f"selector registration at line {line}"
                advice = "unregister it on every path"
            else:
                label = f"resource {tok[1]!r} acquired at line {line}"
                pair = releaser_for.get(tok[1])
                advice = (
                    f"release it via {_short(pair)} on every path"
                    if pair else "release it on every path"
                )
            findings.append(Finding(
                path=self.func.ctx.path, line=line,
                rule=MustReleaseRule.name,
                message=(
                    f"{label} in {self.func.func_id} is still held "
                    f"on {kinds} exit paths; {advice}"
                ),
            ))
        return findings

_PRIMITIVE_ATTRS = _CLOSERS | {"register", "unregister", "accept"}


def _has_primitive(program: Program, func: FunctionInfo) -> bool:
    """Cheap prefilter: does this body mention any ownership primitive
    (socket factory, accept, close, selector (un)register)?"""
    if func.node is None:
        return False
    symbols = program.symbols.get(func.ctx.module, {})
    for node in ast.walk(func.node):
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Attribute) and \
                node.func.attr in _PRIMITIVE_ATTRS:
            return True
        dotted = _dotted(node.func)
        if dotted is None:
            continue
        head, _sep, rest = dotted.partition(".")
        resolved = symbols.get(head, head) + (
            "." + rest if rest else ""
        )
        if resolved in _SOCKET_FACTORIES or \
                resolved == "socket.socketpair":
            return True
    return False


def _check_must_release(program: Program,
                        own: Ownership) -> List[Finding]:
    findings = list(own.index_findings.get(MustReleaseRule.name, ()))
    universe = (
        {d.resource for d in own.acquirers.values()}
        | {d.resource for d in own.releasers.values()}
    )
    released = {d.resource for d in own.releasers.values()}
    for func_id in sorted(own.acquirers):
        decl = own.acquirers[func_id]
        if decl.resource in released:
            continue
        func = program.functions[func_id]
        findings.append(Finding(
            path=func.ctx.path, line=func.node.lineno,
            rule=MustReleaseRule.name,
            message=(
                f"resource {decl.resource!r} has an acquirer "
                f"({func_id}) but no '# repro: releases"
                f"({decl.resource})' anywhere; the pair cannot be "
                "checked"
            ),
        ))
    # Annotated functions *are* the primitive: their summaries are
    # fixed by the annotation and their bodies are not walked.
    annotated = set(own.acquirers) | set(own.releasers)
    summaries: Dict[str, _ReleaseSummary] = {
        func_id: _ReleaseSummary() for func_id in program.functions
    }
    for func_id, decl in own.acquirers.items():
        summaries[func_id].acquires[decl.resource] = decl.conditional
    for func_id, decl in own.releasers.items():
        summaries[func_id].releases.add(decl.resource)
    primitive = {
        func_id: _has_primitive(program, func)
        for func_id, func in program.functions.items()
    }

    def relevant(func_id: str, nonempty: Set[str]) -> bool:
        if func_id in annotated:
            return False
        if primitive[func_id]:
            return True
        func = program.functions[func_id]
        return any(site.callee in nonempty for site in func.calls)

    for _round in range(8):
        nonempty = {
            func_id for func_id, summary in summaries.items()
            if summary.acquires or summary.releases
            or summary.releases_param or summary.escapes_param
        }
        changed = False
        for func_id in sorted(program.functions):
            if not relevant(func_id, nonempty):
                continue
            walker = _CfgWalker(
                program, own, summaries,
                program.functions[func_id], collect=False,
            )
            walker.run(universe)
            if walker.summary != summaries[func_id]:
                summaries[func_id] = walker.summary
                changed = True
        if not changed:
            break
    nonempty = {
        func_id for func_id, summary in summaries.items()
        if summary.acquires or summary.releases
        or summary.releases_param or summary.escapes_param
    }
    for func_id in sorted(program.functions):
        if not relevant(func_id, nonempty):
            continue
        walker = _CfgWalker(
            program, own, summaries,
            program.functions[func_id], collect=True,
        )
        walker.run(universe)
        findings.extend(walker.leak_findings(own))
    return findings


# ----------------------------------------------------------------------
# The rules
# ----------------------------------------------------------------------


class _Analysis:
    """All three rule results over one program, computed once."""

    def __init__(self, program: Program, own: Ownership,
                 model: RoleModel) -> None:
        self.findings: Dict[str, List[Finding]] = {
            ThreadConfinementRule.name:
                _check_confinement(program, own, model),
            LoopBlockingRule.name:
                _check_loop_blocking(program, own, model),
            MustReleaseRule.name:
                _check_must_release(program, own),
        }


#: One-entry cache keyed by context identity, same shape as
#: concurrency's program cache: lint runs every ProgramRule over the
#: same context list back-to-back.
_analysis_cache: List[Tuple[Tuple[int, ...], _Analysis]] = []


def _cached_analysis(contexts: Sequence[ModuleContext]) -> _Analysis:
    key = tuple(id(ctx) for ctx in contexts)
    for cached_key, cached in _analysis_cache:
        if cached_key == key:
            return cached
    program = _cached_program(contexts)
    own = _collect_ownership(program, contexts)
    model = _build_roles(program, own)
    analysis = _Analysis(program, own, model)
    _analysis_cache[:] = [(key, analysis)]
    return analysis


@register
class ThreadConfinementRule(ProgramRule):
    name = "thread-confinement"
    description = (
        "accesses to '# repro: confined-to(<role>)' fields must be "
        "unreachable from any other thread role"
    )
    invariant = (
        "per-connection serving state is touched only by the thread "
        "role that owns it, so the event loop never races its workers"
    )

    def check_program(
        self, contexts: Sequence[ModuleContext],
    ) -> Iterator[Finding]:
        yield from _cached_analysis(contexts).findings[self.name]


@register
class LoopBlockingRule(ProgramRule):
    name = "loop-blocking"
    description = (
        "no blocking primitive (effect >= sleep) may be reachable on "
        "a 'thread-role(<role>, nonblocking)' role; '# repro: "
        "loop-safe' sanctions only direct nonblocking-socket drains"
    )
    invariant = (
        "the event-loop thread never blocks, so one slow handler "
        "cannot stall every pipelined session behind it"
    )

    def check_program(
        self, contexts: Sequence[ModuleContext],
    ) -> Iterator[Finding]:
        yield from _cached_analysis(contexts).findings[self.name]


@register
class MustReleaseRule(ProgramRule):
    name = "must-release"
    description = (
        "declared acquire/release pairs, sockets, and selector "
        "registrations must be released on every path, including "
        "exceptional ones"
    )
    invariant = (
        "a crashed handler can never wedge the serving path by "
        "leaking an admission slot, selector registration, or socket"
    )

    def check_program(
        self, contexts: Sequence[ModuleContext],
    ) -> Iterator[Finding]:
        yield from _cached_analysis(contexts).findings[self.name]
