"""``python -m repro lint`` — run the invariant checker.

Exit codes: 0 clean (warnings allowed unless ``--strict``), 1 findings,
2 usage errors (bad baseline file, no inputs).  The ``lint`` subparser
itself is declared here and mounted by :mod:`repro.cli`, so the
analyzer stays importable without the rest of the CLI.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List

from repro.analysis.core import (
    SEVERITY_ERROR,
    _run_rules,
    all_rules,
    baseline_entries,
    load_baseline,
    parse_paths,
    subtract_baseline,
)
from repro.analysis.reporters import (
    render_json,
    render_sarif,
    render_text,
)

#: Default baseline looked up relative to the current directory.
DEFAULT_BASELINE = "lint-baseline.json"

_EPILOG = """\
suppressions:
  Findings are suppressed inline, on the offending line or on a comment
  line directly above it, and MUST carry a rationale:

      risky_call()  # repro: allow(crash-hygiene) -- recovery re-raises upstream

  A suppression without '-- rationale' is itself an error
  (suppression-rationale); one that matches no finding is a warning
  (unused-suppression), so stale allowances cannot accumulate.

baselines:
  A baseline file ({"version": 1, "findings": [{"path", "rule",
  "message"}, ...]}) grandfathers pre-existing findings; entries are
  line-number-free so pure line drift never invalidates them.  Generate
  one with --write-baseline, diff it with --format=json output.
"""


def configure_parser(parser: argparse.ArgumentParser) -> None:
    parser.formatter_class = argparse.RawDescriptionHelpFormatter
    parser.epilog = _EPILOG
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="fail on warnings too (CI mode)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline file of grandfathered findings "
             f"(default: {DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline", default=None, metavar="FILE",
        help="write current findings as a baseline and exit 0",
    )
    parser.add_argument(
        "--format", default="text", choices=["text", "json", "sarif"],
        dest="output_format",
        help="report format; json is stable and sorted for diffing, "
             "sarif (2.1.0) uploads as GitHub code-scanning alerts",
    )
    parser.add_argument(
        "--rule", action="append", default=None, metavar="NAME",
        dest="rules",
        help="run only this rule (repeatable); suppressions belonging "
             "to rules not selected are neither applied nor reported "
             "unused",
    )
    parser.add_argument(
        "--effect-table", default=None, metavar="FILE",
        dest="effect_table",
        help="also export the per-function blocking-effect table "
             "(the ROADMAP async-refactor work-list) as JSON",
    )
    parser.add_argument(
        "--role-table", default=None, metavar="FILE",
        dest="role_table",
        help="also export the thread-role reachability table (which "
             "functions each spawned role can reach) as JSON",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules with the invariant each protects",
    )


def run(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.name} [{rule.severity}]")
            print(f"    {rule.description}")
            print(f"    invariant: {rule.invariant}")
        return 0

    rules = all_rules()
    if args.rules:
        by_name = {rule.name: rule for rule in rules}
        unknown = sorted(set(args.rules) - set(by_name))
        if unknown:
            print(
                f"error: unknown rule(s): {', '.join(unknown)} "
                f"(see --list-rules)",
                file=sys.stderr,
            )
            return 2
        rules = [
            by_name[name] for name in sorted(set(args.rules))
        ]

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"error: no such path: {', '.join(map(str, missing))}",
            file=sys.stderr,
        )
        return 2
    # Parse once; the rule pass and the effect-table export reuse the
    # same context objects so the interprocedural program cache hits.
    contexts, findings = parse_paths(paths)
    findings.extend(_run_rules(contexts, rules))
    findings.sort()

    if args.effect_table:
        from repro.analysis.dataflow import build_effect_table

        table = build_effect_table(contexts)
        with open(args.effect_table, "w", encoding="utf-8") as handle:
            json.dump(table, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(
            f"wrote effect table for {len(table['functions'])} "
            f"function(s) to {args.effect_table}",
            file=sys.stderr,
        )

    if args.role_table:
        from repro.analysis.ownership import build_role_table

        table = build_role_table(contexts)
        with open(args.role_table, "w", encoding="utf-8") as handle:
            json.dump(table, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(
            f"wrote role table with {len(table['roles'])} role(s) "
            f"over {len(table['functions'])} function(s) to "
            f"{args.role_table}",
            file=sys.stderr,
        )

    if args.write_baseline:
        payload = {"version": 1, "findings": baseline_entries(findings)}
        with open(args.write_baseline, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(
            f"wrote {len(findings)} finding(s) to {args.write_baseline}",
            file=sys.stderr,
        )
        return 0

    if not args.no_baseline:
        baseline_path = Path(args.baseline or DEFAULT_BASELINE)
        if args.baseline is not None and not baseline_path.exists():
            print(
                f"error: baseline {baseline_path} does not exist",
                file=sys.stderr,
            )
            return 2
        if baseline_path.exists():
            try:
                findings = subtract_baseline(
                    findings, load_baseline(baseline_path)
                )
            except (ValueError, json.JSONDecodeError) as error:
                print(
                    f"error: unreadable baseline {baseline_path}: {error}",
                    file=sys.stderr,
                )
                return 2

    if args.output_format == "json":
        sys.stdout.write(render_json(findings))
    elif args.output_format == "sarif":
        sys.stdout.write(render_sarif(findings, rules))
    else:
        print(render_text(findings))

    errors: List = [f for f in findings if f.severity == SEVERITY_ERROR]
    if errors:
        return 1
    if args.strict and findings:
        return 1
    return 0
