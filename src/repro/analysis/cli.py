"""``python -m repro lint`` — run the invariant checker.

Exit codes: 0 clean (warnings allowed unless ``--strict``), 1 findings,
2 usage errors (bad baseline file, no inputs).  The ``lint`` subparser
itself is declared here and mounted by :mod:`repro.cli`, so the
analyzer stays importable without the rest of the CLI.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List

from repro.analysis.core import (
    SEVERITY_ERROR,
    all_rules,
    analyze_paths,
    baseline_entries,
    load_baseline,
    subtract_baseline,
)
from repro.analysis.reporters import render_json, render_text

#: Default baseline looked up relative to the current directory.
DEFAULT_BASELINE = "lint-baseline.json"

_EPILOG = """\
suppressions:
  Findings are suppressed inline, on the offending line or on a comment
  line directly above it, and MUST carry a rationale:

      risky_call()  # repro: allow(crash-hygiene) -- recovery re-raises upstream

  A suppression without '-- rationale' is itself an error
  (suppression-rationale); one that matches no finding is a warning
  (unused-suppression), so stale allowances cannot accumulate.

baselines:
  A baseline file ({"version": 1, "findings": [{"path", "rule",
  "message"}, ...]}) grandfathers pre-existing findings; entries are
  line-number-free so pure line drift never invalidates them.  Generate
  one with --write-baseline, diff it with --format=json output.
"""


def configure_parser(parser: argparse.ArgumentParser) -> None:
    parser.formatter_class = argparse.RawDescriptionHelpFormatter
    parser.epilog = _EPILOG
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="fail on warnings too (CI mode)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline file of grandfathered findings "
             f"(default: {DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline", default=None, metavar="FILE",
        help="write current findings as a baseline and exit 0",
    )
    parser.add_argument(
        "--format", default="text", choices=["text", "json"],
        dest="output_format",
        help="report format; json is stable and sorted for diffing",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules with the invariant each protects",
    )


def run(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.name} [{rule.severity}]")
            print(f"    {rule.description}")
            print(f"    invariant: {rule.invariant}")
        return 0

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"error: no such path: {', '.join(map(str, missing))}",
            file=sys.stderr,
        )
        return 2
    findings = analyze_paths(paths)

    if args.write_baseline:
        payload = {"version": 1, "findings": baseline_entries(findings)}
        with open(args.write_baseline, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(
            f"wrote {len(findings)} finding(s) to {args.write_baseline}",
            file=sys.stderr,
        )
        return 0

    if not args.no_baseline:
        baseline_path = Path(args.baseline or DEFAULT_BASELINE)
        if args.baseline is not None and not baseline_path.exists():
            print(
                f"error: baseline {baseline_path} does not exist",
                file=sys.stderr,
            )
            return 2
        if baseline_path.exists():
            try:
                findings = subtract_baseline(
                    findings, load_baseline(baseline_path)
                )
            except (ValueError, json.JSONDecodeError) as error:
                print(
                    f"error: unreadable baseline {baseline_path}: {error}",
                    file=sys.stderr,
                )
                return 2

    if args.output_format == "json":
        sys.stdout.write(render_json(findings))
    else:
        print(render_text(findings))

    errors: List = [f for f in findings if f.severity == SEVERITY_ERROR]
    if errors:
        return 1
    if args.strict and findings:
        return 1
    return 0
