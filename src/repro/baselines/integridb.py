"""IntegriDB-style accumulator-based verifiable database (baseline).

IntegriDB (Zhang, Katz, Papamanthou — CCS'15) authenticates SQL ranges
with *cryptographic set accumulators* arranged in authenticated interval
trees: every tree node holds an RSA-style accumulator of the rowids in
its value range.  Updates touch O(log n) accumulators, each costing a
modular exponentiation; range queries return canonical covering nodes
with subset witnesses whose computation is linear in the covered sets —
which is exactly why the paper measures it 57-209x slower on updates and
1,560-8,823x slower on queries than hash-based V2FS (Fig. 17).

This reimplementation is *functional*, not a stub: accumulators are real
``g^(prod h(e)) mod N`` values over a fixed 2048-bit modulus, witnesses
verify, and tampering is detected.  Element hashes are 128-bit odd
integers rather than primes — a standard simplification that preserves
the cost profile (the paper's shape depends on the exponentiation count,
not on primality).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.crypto.hashing import hash_bytes
from repro.crypto.signature import _P_HEX  # reuse the vetted 2048-bit prime
from repro.errors import VerificationError

#: RSA-like modulus (a 2048-bit prime here; factoring hardness is not the
#: point of the baseline — the exponentiation cost profile is).
MODULUS = int(_P_HEX, 16)
GENERATOR = 65537


def element_hash(value: object) -> int:
    """Map an element to an odd 128-bit exponent."""
    digest = hash_bytes(repr(value).encode("utf-8"))
    return int.from_bytes(digest[:16], "big") | 1


class Accumulator:
    """A multiplicative set accumulator ``g^(prod h(e)) mod N``."""

    __slots__ = ("value", "elements")

    def __init__(self) -> None:
        self.value = GENERATOR
        self.elements: List[object] = []

    def add(self, element: object) -> None:
        self.value = pow(self.value, element_hash(element), MODULUS)
        self.elements.append(element)

    def witness_for(self, subset: Sequence[object]) -> int:
        """Witness that ``subset`` is contained in the accumulated set.

        Costs one modular exponentiation per element *outside* the
        subset — the linear factor that dominates IntegriDB queries.
        """
        subset_hashes = sorted(element_hash(e) for e in subset)
        witness = GENERATOR
        for element in self.elements:
            h = element_hash(element)
            position = bisect.bisect_left(subset_hashes, h)
            in_subset = (
                position < len(subset_hashes)
                and subset_hashes[position] == h
            )
            if in_subset:
                subset_hashes.pop(position)
            else:
                witness = pow(witness, h, MODULUS)
        if subset_hashes:
            raise VerificationError("subset contains foreign elements")
        return witness

    @staticmethod
    def verify(
        accumulator_value: int, subset: Sequence[object], witness: int
    ) -> bool:
        current = witness
        for element in subset:
            current = pow(current, element_hash(element), MODULUS)
        return current == accumulator_value


@dataclass
class RangeProof:
    """Covering nodes + per-node witnesses for the matching rows.

    ``root_value``/``root_witness`` form the completeness component: a
    subset witness of the result against the whole column's accumulator.
    Computing it iterates the entire column — the O(n) group-operation
    cost that dominates real IntegriDB query proving (there realized as
    polynomial arithmetic in the exponent).
    """

    node_ids: List[int]
    accumulator_values: List[int]
    witnesses: List[int]
    rows_per_node: List[List[Tuple[object, int]]]
    root_value: int = 0
    root_witness: int = 0


class _IntervalTree:
    """Static-domain authenticated interval tree over one column.

    The tree is built over value *slots* (an order-preserving partition
    of a declared numeric domain); every node accumulates the
    (value, rowid) pairs falling in its range.  Inserts update the
    O(log n) accumulators on the leaf-to-root path.
    """

    def __init__(
        self, capacity_bits: int = 16, domain_max: int = 1 << 20
    ) -> None:
        self.capacity_bits = capacity_bits
        self.capacity = 1 << capacity_bits
        self.domain_max = domain_max
        self._accumulators: Dict[int, Accumulator] = {}

    def _slot(self, value: object) -> int:
        if isinstance(value, bool):
            value = int(value)
        if isinstance(value, (int, float)):
            # Order-preserving bucketing over [0, domain_max].
            clamped = max(0, min(self.domain_max, int(value)))
            return clamped * self.capacity // (self.domain_max + 1)
        digest = hash_bytes(str(value).encode("utf-8"))
        return int.from_bytes(digest[:4], "big") % self.capacity

    def _node(self, node_id: int) -> Accumulator:
        accumulator = self._accumulators.get(node_id)
        if accumulator is None:
            accumulator = Accumulator()
            self._accumulators[node_id] = accumulator
        return accumulator

    def insert(self, value: object, rowid: int) -> None:
        node_id = self.capacity + self._slot(value)
        element = (value, rowid)
        while node_id >= 1:
            self._node(node_id).add(element)
            node_id //= 2

    def _canonical_nodes(self, low_slot: int, high_slot: int) -> List[int]:
        """Minimal node set covering [low_slot, high_slot] (segment-tree
        canonical decomposition, half-open form)."""
        nodes: List[int] = []
        lo = self.capacity + low_slot
        hi = self.capacity + high_slot + 1
        while lo < hi:
            if lo & 1:
                nodes.append(lo)
                lo += 1
            if hi & 1:
                hi -= 1
                nodes.append(hi)
            lo >>= 1
            hi >>= 1
        return nodes

    def range_query(self, low: int, high: int) -> RangeProof:
        low_slot = self._slot(low)
        high_slot = self._slot(high)
        node_ids = self._canonical_nodes(low_slot, high_slot)
        accumulator_values: List[int] = []
        witnesses: List[int] = []
        rows_per_node: List[List[Tuple[object, int]]] = []
        for node_id in node_ids:
            accumulator = self._node(node_id)
            matching = [
                element for element in accumulator.elements
                if isinstance(element[0], (int, float))
                and low <= element[0] <= high
            ]
            accumulator_values.append(accumulator.value)
            witnesses.append(accumulator.witness_for(matching))
            rows_per_node.append(list(matching))
        all_matching = [
            element for per_node in rows_per_node for element in per_node
        ]
        root = self._node(1)
        return RangeProof(
            node_ids, accumulator_values, witnesses, rows_per_node,
            root_value=root.value,
            root_witness=root.witness_for(all_matching),
        )

    def verify_range(self, proof: RangeProof) -> List[Tuple[object, int]]:
        results: List[Tuple[object, int]] = []
        for value, subset, witness in zip(
            proof.accumulator_values, proof.rows_per_node, proof.witnesses
        ):
            if not Accumulator.verify(value, subset, witness):
                raise VerificationError("IntegriDB witness check failed")
            results.extend(subset)
        if not Accumulator.verify(
            proof.root_value, results, proof.root_witness
        ):
            raise VerificationError(
                "IntegriDB completeness witness check failed"
            )
        return results


class IntegriDbLike:
    """A one-table accumulator-verified database (the Fig. 17 baseline)."""

    def __init__(
        self,
        columns: Sequence[str],
        capacity_bits: int = 16,
        domain_max: int = 1 << 20,
    ) -> None:
        self.columns = list(columns)
        self._trees: Dict[str, _IntervalTree] = {
            column: _IntervalTree(capacity_bits, domain_max)
            for column in columns
        }
        self._rows: Dict[int, Tuple] = {}
        self._next_rowid = 1

    def insert(self, row: Sequence[object]) -> int:
        if len(row) != len(self.columns):
            raise ValueError("row width mismatch")
        rowid = self._next_rowid
        self._next_rowid += 1
        self._rows[rowid] = tuple(row)
        for column, value in zip(self.columns, row):
            self._trees[column].insert(value, rowid)
        return rowid

    def range_query(
        self, column: str, low: int, high: int
    ) -> Tuple[List[Tuple], RangeProof]:
        """Verifiable range query: returns rows and the proof."""
        proof = self._trees[column].range_query(low, high)
        rowids = sorted(
            rowid
            for per_node in proof.rows_per_node
            for _, rowid in per_node
        )
        rows = [self._rows[rowid] for rowid in rowids]
        return rows, proof

    def verify(
        self, column: str, proof: RangeProof
    ) -> List[Tuple[object, int]]:
        """Client-side verification of a range proof."""
        return self._trees[column].verify_range(proof)

    def __len__(self) -> int:
        return len(self._rows)
