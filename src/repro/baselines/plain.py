"""Ordinary (unverified) database runner — the Fig. 12 baseline.

Runs the same engine on a plain local replica of the ISP's data: zero
network, zero verification, no caches needed.  The ratio between this
runner and the verified client isolates V2FS's integrity overhead, which
the paper reports as 2.9-3.9x on the Mixed workload.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List

from repro.db.engine import Engine
from repro.workloads.generator import Workload


@dataclass
class PlainRunMetrics:
    """Timing of one workload on the unverified engine."""

    workload: str
    queries: int
    total_s: float

    @property
    def avg_s(self) -> float:
        return self.total_s / max(1, self.queries)


class PlainRunner:
    """Executes workloads on an unverified engine replica."""

    def __init__(self, engine: Engine) -> None:
        self.engine = engine

    def run(self, workload: Workload) -> PlainRunMetrics:
        started = time.perf_counter()
        for sql in workload.queries:
            self.engine.execute(sql)
        return PlainRunMetrics(
            workload=workload.name,
            queries=len(workload.queries),
            total_s=time.perf_counter() - started,
        )

    def run_queries(self, queries: List[str]) -> PlainRunMetrics:
        return self.run(Workload(name="adhoc", queries=list(queries)))
