"""Baselines the paper compares against.

* :mod:`repro.baselines.integridb` — a functional reimplementation of
  IntegriDB's accumulator-based verifiable index (Fig. 17 comparison);
* :mod:`repro.baselines.plain` — the ordinary, unverified database
  runner (Fig. 12 comparison).
"""

from repro.baselines.integridb import IntegriDbLike
from repro.baselines.plain import PlainRunner

__all__ = ["IntegriDbLike", "PlainRunner"]
