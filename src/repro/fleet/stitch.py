"""Merging per-shard consolidated VOs into one client-verifiable proof.

Every shard pins the same certified root (the shard ADS stores the full
digest skeleton — see :mod:`repro.fleet.shard`), so the per-shard
:class:`~repro.merkle.proof.AdsProof` objects a fleet session collects
are *views of one tree*: identical everywhere they overlap, expanded
along different paths.  Stitching is therefore a structural union —
expanded nodes win over opaque digests, sibling maps merge — and the
result is indistinguishable from a proof a single ISP would have built,
which is exactly why the unmodified client verifier accepts it.

The honest router stitches with ``verify=True``: any overlap
disagreement (two shards claiming different content for the same
position) is a fleet-integrity failure and raises a typed
:class:`~repro.errors.FleetError` — a *liveness* check that catches a
corrupt or misconfigured shard early.  It is not a trust anchor: the
adversarial test suite stitches with ``verify=False`` to model a
colluding router that forwards inconsistent shard output, and the
client's certificate check still rejects the result.  Soundness lives
in the client, full stop.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple, Union

from repro.crypto.hashing import Digest
from repro.errors import FleetError
from repro.merkle.page_tree import Position
from repro.merkle.proof import AdsProof, FileProof, ProofDir, ProofFile

TrieChild = Union[ProofDir, ProofFile, Digest]


# repro: taint-source
def stitch_proofs(
    proofs: Iterable[AdsProof], verify: bool = True
) -> AdsProof:
    """Union a sequence of same-root proofs into one.

    With ``verify`` (the honest router), overlapping positions must
    agree — an expanded node must hash to the opaque digest it
    replaces, and twice-expanded nodes must be identical — else
    :class:`FleetError`.  Without it, the first proof's content wins on
    conflict (the collusive-router mode used by adversarial tests).
    """
    items = list(proofs)
    if not items:
        raise FleetError("no per-shard proofs to stitch")
    trie: TrieChild = items[0].trie
    files: Dict[str, FileProof] = {
        path: FileProof(dict(proof.siblings))
        for path, proof in items[0].files.items()
    }
    for other in items[1:]:
        trie = _merge_node(trie, other.trie, verify)
        for path, proof in other.files.items():
            _merge_file(files, path, proof, verify)
    if not isinstance(trie, ProofDir):
        raise FleetError("stitched proof root is not a directory")
    return AdsProof(trie=trie, files=files)


def _conflict(message: str) -> "FleetError":
    return FleetError(f"per-shard proofs disagree: {message}")


def _merge_node(a: TrieChild, b: TrieChild, verify: bool) -> TrieChild:
    a_expanded = isinstance(a, (ProofDir, ProofFile))
    b_expanded = isinstance(b, (ProofDir, ProofFile))
    if not a_expanded and not b_expanded:
        if verify and a != b:
            raise _conflict("opaque digest mismatch")
        return a
    if not a_expanded:
        if verify and b.digest() != a:
            raise _conflict("expanded node does not hash to its digest")
        return b
    if not b_expanded:
        if verify and a.digest() != b:
            raise _conflict("expanded node does not hash to its digest")
        return a
    if isinstance(a, ProofFile) or isinstance(b, ProofFile):
        if type(a) is not type(b):
            if verify:
                raise _conflict("file expanded as directory elsewhere")
            return a
        if verify and (
            a.segment != b.segment
            or a.tree_root != b.tree_root
            or a.size != b.size
            or a.page_count != b.page_count
        ):
            raise _conflict(f"file metadata mismatch for {a.segment!r}")
        return a
    # Both directories.  Same root => same underlying DirNode => the
    # child name sequences match exactly; anything else is a conflict.
    if a.segment != b.segment:
        if verify:
            raise _conflict(
                f"directory segment {a.segment!r} != {b.segment!r}"
            )
        return a
    a_names = [name for name, _ in a.children]
    b_names = [name for name, _ in b.children]
    if a_names != b_names:
        if verify:
            raise _conflict(
                f"directory {a.segment!r} child sets differ"
            )
        return a
    children: List[Tuple[str, TrieChild]] = [
        (name, _merge_node(a_child, b_child, verify))
        for (name, a_child), (_, b_child)
        in zip(a.children, b.children)
    ]
    return ProofDir(a.segment, children)


def _merge_file(
    files: Dict[str, FileProof],
    path: str,
    proof: FileProof,
    verify: bool,
) -> None:
    existing = files.get(path)
    if existing is None:
        files[path] = FileProof(dict(proof.siblings))
        return
    merged: Dict[Position, Digest] = existing.siblings
    for position, digest in proof.siblings.items():
        held = merged.get(position)
        if held is None:
            merged[position] = digest
        elif verify and held != digest:
            raise _conflict(
                f"sibling digest mismatch at {position} of {path}"
            )


__all__ = ["stitch_proofs"]
