"""MVCC read replicas and the replication log that feeds them.

A replica serves the same partition as its shard primary, one
content-addressed delta behind at worst.  The primary's recording
store captures each sync's new nodes as a
:class:`~repro.merkle.delta.NodeDelta`; the :class:`ReplicationLog`
appends ``(delta, certificate)`` pairs and ships them to every
attached replica, tracking a cursor per replica so a lagging or
fault-injected replica simply stays behind — it never sees a partial
version.

Staleness is *detected, never trusted away*: the router compares a
replica's certificate version against the session's pinned version
before routing a read there, and a lagging replica falls back to the
primary (``fleet.replica.stale``).  Even if the router misroutes, a
stale replica can only produce proofs against an old root, which the
client's certificate check rejects.

The log is driven by the single fleet-lifecycle thread (sync fan-out
and shipment happen in sequence); replica *application* synchronizes
against the replica's RPC server lock via the ``apply_fn`` the
lifecycle attaches, so in-flight replica reads keep their pinned
snapshots (the same MVCC the single-node ISP provides).
"""

from __future__ import annotations

import logging
from typing import Callable, Dict, List, Tuple

from repro.core.certificate import V2fsCertificate
from repro.errors import FleetError, ReproError, StorageError
from repro.faults import registry as faults
from repro.faults.registry import InjectedFault
from repro.fleet.partition import Partitioner
from repro.fleet.shard import ShardIsp
from repro.merkle.ads import V2fsAds
from repro.merkle.delta import NodeDelta, RecordingNodeStore
from repro.merkle.node_store import NodeStore
from repro.obs import metrics as obs

logger = logging.getLogger("repro.fleet")

#: How a delta reaches one replica (wraps the replica server's lock).
ApplyFn = Callable[[NodeDelta, V2fsCertificate], None]


class ReplicaIsp(ShardIsp):
    """A read-only copy of one shard, advanced by applying deltas."""

    def __init__(self, shard_id: int, partitioner: Partitioner) -> None:
        super().__init__(shard_id, partitioner)
        # Replicas replay deltas instead of recording them.
        self.ads = V2fsAds(NodeStore())
        self.root = self.ads.root
        #: Flips at :meth:`promote`; re-enables the primary write path.
        self._promoted = False

    def sync_update(self, writes, new_sizes, certificate) -> None:
        if self._promoted:
            return super().sync_update(writes, new_sizes, certificate)
        raise FleetError(
            "replica is read-only; it advances via apply_delta"
        )

    def take_delta(self) -> NodeDelta:
        if self._promoted:
            return super().take_delta()
        raise FleetError("replicas do not record deltas")

    def promote(self, expected_version: int) -> "ReplicaIsp":
        """Become this shard's primary — *only* if fully caught up.

        Promotion is certificate-gated: the caller states the fleet's
        current certified version and a replica that has not applied
        that delta **refuses** (``fleet.promote.refused`` + typed
        :class:`FleetError`) rather than serve a rolled-back snapshot
        as the new authority.  A refused promotion is recoverable — the
        lifecycle can ship the missing deltas and retry, or pick a
        different replica.

        On success the replica's plain node store is wrapped in a
        :class:`~repro.merkle.delta.RecordingNodeStore`
        (:meth:`~repro.merkle.delta.RecordingNodeStore.adopt`) so the
        *next* sync's new nodes feed the replicas now following it, and
        the primary-only surface (``sync_update``/``take_delta``)
        unlocks.  Idempotent: promoting an already-promoted replica at
        the same version is a no-op.
        """
        certificate = self.certificate
        if certificate is None or certificate.version < expected_version:
            have = "none" if certificate is None else certificate.version
            if obs.ACTIVE:
                obs.inc("fleet.promote.refused")
            raise FleetError(
                f"replica for shard {self.shard_id} refuses promotion: "
                f"at version {have}, fleet is at {expected_version} "
                f"(stale replicas must not become primaries)"
            )
        if not self._promoted:
            self.ads.store = RecordingNodeStore.adopt(self.ads.store)
            self._promoted = True
            if obs.ACTIVE:
                obs.inc("fleet.promote.ok")
            logger.warning(
                "replica for shard %d promoted to primary at "
                "version %d", self.shard_id, certificate.version,
            )
        return self

    # repro: taint-sanitizer
    def apply_delta(
        self, delta: NodeDelta, certificate: V2fsCertificate
    ) -> None:
        """Insert one version transition and publish its root.

        Mirrors the primary's *stage -> verify -> sync -> publish ->
        prune* ordering: nodes land in the content-addressed store
        first (failures leave only unreferenced garbage), the root is
        cross-checked against the certificate, and only then does the
        served snapshot advance.  Prior roots stay readable for
        in-flight replica sessions — the replica inherits the
        single-node MVCC for free.
        """
        if delta.version != certificate.version:
            raise FleetError(
                f"delta version {delta.version} does not match "
                f"certificate version {certificate.version}"
            )
        if delta.root != certificate.ads_root:
            raise FleetError(
                "delta root does not match the certified root"
            )
        for node in delta.nodes:
            self.ads.store.put(node)
        if delta.nodes and delta.root not in self.ads.store:
            raise FleetError(
                "delta does not contain its own root node"
            )
        self.ads.store.sync()
        self._previous_root = self.root
        self.root = delta.root
        self.certificate = certificate
        if obs.ACTIVE:
            obs.inc("fleet.replica.apply")
        live = [self.root]
        if self._previous_root is not None:
            live.append(self._previous_root)
        live.extend(self.sessions.live_roots())
        try:
            self.ads.prune(live)
        except (StorageError, OSError):
            logger.exception(
                "replica post-publish prune failed; "
                "superseded nodes retained"
            )


class ReplicationLog:
    """Ordered deltas from one shard primary, with per-replica cursors.

    ``attach`` registers a replica's apply callback; ``append`` adds
    one sync's delta; ``ship`` pushes every pending delta to every
    replica that is neither fault-lagged nor failing, then truncates
    entries all replicas have consumed.  Cursors are absolute delta
    indices, so truncation never loses track of who is where.
    """

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self._entries: List[Tuple[NodeDelta, V2fsCertificate]] = []
        self._base = 0
        self._cursors: Dict[str, int] = {}
        self._appliers: Dict[str, ApplyFn] = {}

    def attach(self, label: str, apply_fn: ApplyFn) -> None:
        """Register a replica starting from the full history."""
        self._cursors.setdefault(label, 0)
        self._appliers[label] = apply_fn

    def detach(self, label: str) -> None:
        self._appliers.pop(label, None)
        self._cursors.pop(label, None)

    @property
    def length(self) -> int:
        """Total deltas ever appended (absolute head position)."""
        return self._base + len(self._entries)

    def lag_of(self, label: str) -> int:
        """How many deltas ``label`` is behind the head."""
        return self.length - self._cursors.get(label, 0)

    def append(
        self, delta: NodeDelta, certificate: V2fsCertificate
    ) -> None:
        self._entries.append((delta, certificate))

    def ship(self) -> int:
        """Push pending deltas to every attached replica.

        Returns the number of (replica, delta) shipments performed.
        The ``fleet.replica.lag`` failpoint withholds one replica's
        shipment for this round (chaos: force a replica to fall
        behind); an apply failure leaves that replica's cursor so the
        next round retries from the same delta.
        """
        shipped = 0
        for label, apply_fn in self._appliers.items():
            if faults.ACTIVE:
                try:
                    faults.fire(
                        "fleet.replica.lag",
                        shard=self.shard_id, replica=label,
                    )
                except InjectedFault:
                    logger.warning(
                        "failpoint fleet.replica.lag: withholding "
                        "shipment to %s", label,
                    )
                    if obs.ACTIVE:
                        obs.inc("fleet.replication.lag")
                    continue
            cursor = self._cursors[label]
            while cursor < self.length:
                delta, certificate = self._entries[cursor - self._base]
                try:
                    apply_fn(delta, certificate)
                except ReproError:
                    logger.exception(
                        "replica %s failed to apply delta %d; "
                        "will retry", label, cursor,
                    )
                    break
                cursor += 1
                shipped += 1
                if obs.ACTIVE:
                    obs.inc("fleet.replication.ship")
            self._cursors[label] = cursor
        self._truncate()
        return shipped

    def _truncate(self) -> None:
        if not self._cursors:
            return
        floor = min(self._cursors.values())
        drop = floor - self._base
        if drop > 0:
            del self._entries[:drop]
            self._base = floor


__all__ = ["ApplyFn", "ReplicaIsp", "ReplicationLog"]
