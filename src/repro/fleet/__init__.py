"""Sharded, replicated ISP fleet with a proof-stitching router.

The single-node :class:`~repro.isp.server.IspServer` serves the whole
authenticated filesystem from one process.  This package scales it out
without touching the trust model:

* :mod:`repro.fleet.partition` — who owns which path (hash or range
  strategies over the key space, published as a versioned
  :class:`~repro.fleet.partition.ShardMap`);
* :mod:`repro.fleet.shard` — a shard primary: a full ADS *skeleton*
  (every digest) but page data only for its partition, so its root is
  byte-identical to the fleet-wide certified root;
* :mod:`repro.fleet.replication` — MVCC read replicas fed by a
  replication log of content-addressed node deltas;
* :mod:`repro.fleet.stitch` — merging per-shard consolidated VOs into
  one proof anchored at the certified root;
* :mod:`repro.fleet.router` — the stateless fan-out router clients
  talk to, speaking the unmodified :mod:`repro.rpc` wire protocol;
* :mod:`repro.fleet.lifecycle` — process orchestration: launch N
  shards + R replicas + a router, kill and restart shards.

The soundness invariant: the *client verifier is unchanged*.  Every
stitched proof must verify against the certificate exactly as a
single-node proof would, so a tampered or stale answer from any one
shard or replica fails client verification — the router is just as
untrusted as the ISP it replaces.
"""
