"""Fleet resilience policies: endpoint config, hedging, deadline split.

This module is the fleet's *degraded-modes* policy box — the knobs and
mechanisms the router uses to keep serving when parts of the fleet are
slow, dead, or partitioned:

* :class:`ResilienceConfig` — one declarative bundle for every
  router-to-shard endpoint handle (timeouts, retries, breaker, shared
  retry budget, hedging, deadlines).  The router's default handle
  factory reads it, so deployments tune failure behavior in one place
  instead of editing hardcoded constructor defaults.
* :class:`HedgePolicy` — an adaptive hedging trigger: it tracks a
  sliding window of observed page-read latencies and fires a *hedge*
  (a duplicate read to another endpoint) only when the primary has
  been slower than the observed p99 — so hedges are rare (~1% of
  reads) in a healthy fleet but fire quickly when a shard browns out.
* :func:`hedged_call` — run a primary thunk, launch the hedge thunk
  after a delay, return the first success.  Safe for V²FS reads by
  construction: both answers came from sessions pinned to the same
  certified version, and the client verifies whichever VO set arrives,
  so a hedging mistake can only cost bytes, never correctness.  This
  is the *thread-racing* variant — it spawns a worker per call, which
  is too expensive for the router's per-page hot path; the router
  instead runs a *tied request* (primary capped at the adaptive delay
  via the deadline machinery, hedge issued inline on expiry, see
  :meth:`~repro.fleet.router.FleetIsp.get_page`).
* :func:`split_deadline` — deadline algebra for sequential fan-out:
  hand each of ``n`` remaining shards an equal slice of the remaining
  budget so one slow shard cannot starve the rest of the fan-out.

Everything here fails typed (:mod:`repro.errors`) and within the
caller's deadline; hedging never hides an error — if *both* arms fail,
the primary's error propagates.
"""

from __future__ import annotations

import queue
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple, TypeVar

from repro.errors import ReproError, RpcTimeoutError
from repro.obs import metrics as obs
from repro.rpc.client import RemoteIsp
from repro.rpc.deadline import Deadline, RetryBudget, remaining_or
from repro.sanitize.runtime import SanThread

T = TypeVar("T")


@dataclass
class ResilienceConfig:
    """Failure-behavior knobs for one fleet's router-to-shard plane."""

    #: Per-attempt socket timeout for router-to-shard hops.  Tighter
    #: than a WAN client's: shards are co-located and a dead one
    #: should surface quickly.
    timeout_s: float = 5.0
    #: Per-call retry attempts beyond the first (connection-level
    #: failures only; see :class:`~repro.rpc.client.RemoteIsp`).
    max_retries: int = 2
    backoff_s: float = 0.05
    max_backoff_s: float = 1.0
    breaker_threshold: int = 4
    breaker_cooldown_s: float = 0.25
    #: Netsplit label for every handle this config builds: the fleet
    #: router sits on its own side of simulated partitions.
    label: str = "router"
    #: Shared token bucket across every handle built from this config:
    #: caps the *whole router's* retry rate during a fleet-wide
    #: brownout, not just one endpoint's.
    retry_budget_capacity: float = 32.0
    retry_budget_refill_per_s: float = 8.0
    #: Hedged reads: duplicate a slow page read to another endpoint of
    #: the same shard after an adaptive delay.
    hedge_enabled: bool = True
    #: Floor under the adaptive hedge delay — never hedge faster than
    #: this even when observed latencies are tiny, or a healthy fleet
    #: would double its read traffic on noise.
    hedge_floor_s: float = 0.010
    #: Sliding-window size for the latency percentile estimate.
    hedge_window: int = 128
    #: Minimum observations before trusting the percentile (until
    #: then, hedge at ``hedge_floor_s`` + ``timeout_s``/4 — effectively
    #: only for pathological slowness).
    hedge_min_samples: int = 16

    _shared_budget: Optional[RetryBudget] = field(
        default=None, repr=False, compare=False
    )

    def retry_budget(self) -> RetryBudget:
        """The config's process-wide shared retry bucket (lazy)."""
        if self._shared_budget is None:
            self._shared_budget = RetryBudget(
                capacity=self.retry_budget_capacity,
                refill_per_s=self.retry_budget_refill_per_s,
            )
        return self._shared_budget

    def make_handle(self, endpoint: Tuple[str, int]) -> RemoteIsp:
        """Build one endpoint proxy carrying this config's policies."""
        return RemoteIsp(
            endpoint[0],
            endpoint[1],
            timeout_s=self.timeout_s,
            max_retries=self.max_retries,
            backoff_s=self.backoff_s,
            max_backoff_s=self.max_backoff_s,
            breaker_threshold=self.breaker_threshold,
            breaker_cooldown_s=self.breaker_cooldown_s,
            label=self.label,
            retry_budget=self.retry_budget(),
        )


class HedgePolicy:
    """Adaptive hedge trigger from a sliding latency window.

    Not thread-synchronized: it is only ever touched from the router
    handler thread serving one request at a time per session, and the
    worst a racy append can do is perturb the percentile estimate by
    one sample — the delay is a heuristic, not a correctness input.
    """

    def __init__(
        self,
        floor_s: float = 0.010,
        window: int = 128,
        min_samples: int = 16,
        quantile: float = 0.99,
        fallback_delay_s: float = 1.0,
        recompute_every: int = 16,
    ) -> None:
        self.floor_s = floor_s
        self.window = window
        self.min_samples = min_samples
        self.quantile = quantile
        self.fallback_delay_s = fallback_delay_s
        #: Sorting the window on every read would cost more than the
        #: read's own bookkeeping; the percentile is re-derived at most
        #: once per this many new observations.
        self.recompute_every = max(1, recompute_every)
        self._samples: List[float] = []
        self._next = 0
        self._cached_delay: Optional[float] = None
        self._since_compute = 0

    def observe(self, latency_s: float) -> None:
        """Record one completed primary read's latency (ring buffer)."""
        if len(self._samples) < self.window:
            self._samples.append(latency_s)
        else:
            self._samples[self._next] = latency_s
            self._next = (self._next + 1) % self.window
        self._since_compute += 1

    def delay_s(self) -> float:
        """How long to wait for the primary before hedging."""
        if len(self._samples) < self.min_samples:
            return max(self.floor_s, self.fallback_delay_s)
        if (
            self._cached_delay is None
            or self._since_compute >= self.recompute_every
        ):
            ordered = sorted(self._samples)
            index = min(
                len(ordered) - 1, int(len(ordered) * self.quantile)
            )
            self._cached_delay = max(self.floor_s, ordered[index])
            self._since_compute = 0
        return self._cached_delay


def split_deadline(
    deadline: Optional[Deadline], parts: int
) -> Optional[Deadline]:
    """An equal slice of the remaining budget for one of ``parts``
    sequential sub-calls (``None`` passes through unconstrained)."""
    if deadline is None:
        return None
    return Deadline.after(deadline.remaining() / max(1, parts))


def hedged_call(
    primary: Callable[[], T],
    hedge: Callable[[], T],
    delay_s: float,
    timeout_s: float,
    deadline: Optional[Deadline] = None,
) -> Tuple[T, bool]:
    """First verified-able answer of a primary/hedge pair.

    Runs ``primary`` in a worker thread; if no answer lands within
    ``delay_s``, launches ``hedge`` and returns whichever arm succeeds
    first (``(value, won_by_hedge)``).  Failure handling is strict:

    * one arm fails, the other succeeds → the success wins (that *is*
      the point of hedging);
    * both fail → the **primary's** error propagates (the hedge was a
      bonus attempt, not the authority on what went wrong);
    * nothing answers within ``timeout_s`` (capped by ``deadline``) →
      :class:`~repro.errors.RpcTimeoutError` — a hedged read can never
      out-hang an unhedged one.

    The worker threads only touch thread-safe endpoint handles (pooled
    sockets), and a losing arm's late result is simply dropped — its
    side effect is one extra read claim on a session that still gets
    finalized and stitched, which the VO union absorbs.
    """
    results: "queue.Queue[Tuple[str, bool, object]]" = queue.Queue()

    def run(fn: Callable[[], T], tag: str) -> None:
        try:
            results.put((tag, True, fn()))
        except ReproError as error:
            results.put((tag, False, error))

    SanThread(
        target=run, args=(primary, "primary"),
        name="fleet-hedge-primary", daemon=True,
    ).start()
    budget = remaining_or(deadline, timeout_s)
    started_hedge = False
    try:
        tag, ok, value = results.get(timeout=min(delay_s, budget))
    except queue.Empty:
        if obs.ACTIVE:
            obs.inc("fleet.hedge.fired")
        SanThread(
            target=run, args=(hedge, "hedge"),
            name="fleet-hedge-secondary", daemon=True,
        ).start()
        started_hedge = True
        try:
            tag, ok, value = results.get(
                timeout=remaining_or(deadline, timeout_s)
            )
        except queue.Empty:
            raise RpcTimeoutError(
                f"hedged read produced no answer within {timeout_s}s"
            )
    if ok:
        if tag == "hedge" and obs.ACTIVE:
            obs.inc("fleet.hedge.won")
        return value, tag == "hedge"  # type: ignore[return-value]
    first_failure = (tag, value)
    # The first arm failed; if a second arm is running, give it the
    # rest of the budget to succeed.
    if not started_hedge:
        if obs.ACTIVE:
            obs.inc("fleet.hedge.fired")
        SanThread(
            target=run, args=(hedge, "hedge"),
            name="fleet-hedge-secondary", daemon=True,
        ).start()
    try:
        tag, ok, value = results.get(
            timeout=remaining_or(deadline, timeout_s)
        )
    except queue.Empty:
        raise RpcTimeoutError(
            f"hedged read produced no answer within {timeout_s}s"
        )
    if ok:
        if tag == "hedge" and obs.ACTIVE:
            obs.inc("fleet.hedge.won")
        return value, tag == "hedge"  # type: ignore[return-value]
    # Both arms failed: surface the primary's error.
    for failed_tag, error in (first_failure, (tag, value)):
        if failed_tag == "primary":
            assert isinstance(error, ReproError)
            raise error
    assert isinstance(first_failure[1], ReproError)
    raise first_failure[1]


#: Helper for the router: elapsed wall-clock of one thunk.
def timed_call(fn: Callable[[], T]) -> Tuple[T, float]:
    start = time.monotonic()
    value = fn()
    return value, time.monotonic() - start


__all__ = [
    "HedgePolicy",
    "ResilienceConfig",
    "hedged_call",
    "split_deadline",
    "timed_call",
]
