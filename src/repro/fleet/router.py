"""The stateless fan-out router: one ISP surface over many shards.

:class:`FleetIsp` exposes the exact client-facing surface of
:class:`~repro.isp.server.IspServer`, so the unmodified
:class:`~repro.client.query_client.QueryClient` (and the unmodified
wire protocol, via :class:`FleetRouterServer`) work against a sharded
fleet without knowing it is one:

* ``open_session`` pins a *fleet* session to one certificate version;
  per-shard sessions open lazily underneath, each forced to the same
  version (``open_session(expected_version=...)``), so every shard
  serves the same snapshot;
* reads route to the owning shard — a fresh replica when one is caught
  up to the pinned version (read/write splitting), the primary
  otherwise; slow page reads are *hedged* to a second endpoint of the
  same shard after an adaptive delay (:mod:`repro.fleet.resilience`);
* ``finalize_session`` collects every touched shard's consolidated VO
  (hedge sessions included) and stitches them
  (:mod:`repro.fleet.stitch`) into one proof the client verifies
  against the certificate exactly as before;
* ``sync_update`` fans the CI's batch to every shard primary and
  merges the acks, retry-idempotent per shard.

Failure-domain behavior: an optional
:class:`~repro.fleet.health.HealthTracker` lets the router skip
replicas already declared dead; a client deadline propagated through
the wire frame is spent across the whole fan-out (each sequential
sub-call gets a slice of the remaining budget); and a failover
promotion installs a new :class:`~repro.fleet.partition.ShardMap`
*epoch* — sessions opened under the old epoch abort with a typed
:class:`~repro.errors.EpochError` instead of stitching a proof across
two fleet topologies.

"Stateless" means *no authenticated state*: the router holds routing
tables and session bookkeeping, but no ADS and no trust.  It is as
untrusted as the ISP it fronts — the adversarial suite runs collusive
routers, and the client catches them.
"""

from __future__ import annotations

import logging
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.certificate import V2fsCertificate
from repro.errors import EpochError, FleetError, NetworkError, ReproError
from repro.faults import registry as faults
from repro.fleet.health import HealthTracker
from repro.fleet.partition import Endpoint, ShardMap, page_key
from repro.fleet.resilience import (
    HedgePolicy,
    ResilienceConfig,
    split_deadline,
)
from repro.fleet.stitch import stitch_proofs
from repro.isp.sessions import SessionRegistry
from repro.merkle.proof import AdsProof
from repro.obs import metrics as obs
from repro.rpc import codec
from repro.rpc.client import RemoteIsp
from repro.rpc.deadline import Deadline
from repro.rpc.server import RpcIspServer
from repro.serve.server import AsyncIspServer

logger = logging.getLogger("repro.fleet")

#: Builds the proxy for one endpoint.  ``None`` means "build from the
#: fleet's :class:`ResilienceConfig`" — the config owns every timeout,
#: retry, breaker, and netsplit-label knob, so deployments tune the
#: endpoint plane in one place.  Tests swap in fakes.
HandleFactory = Callable[[Endpoint], RemoteIsp]

#: One shard's share of a ``sync_update`` fan-out (provided by the
#: lifecycle: wraps the shard server's lock, the shard sync, and the
#: replication shipment).
SyncFn = Callable[[dict, dict, V2fsCertificate], None]


def _health_key(endpoint: Endpoint) -> str:
    return f"{endpoint[0]}:{endpoint[1]}"


class RouterSession:
    """Router-side state of one fleet query session."""

    def __init__(self, session_id: int, version: int, epoch: int = 1) -> None:
        self.session_id = session_id
        #: The certificate version every shard session must pin.
        self.version = version
        #: The shard-map epoch this session's routing was computed
        #: under.  A promotion bumps the router's epoch; stale sessions
        #: abort typed instead of stitching across topologies.
        self.epoch = epoch
        #: shard_id -> (handle, remote session id), opened lazily.
        self.shard_sessions: Dict[int, Tuple[RemoteIsp, int]] = {}
        #: shard_id -> (handle, remote session id) on the *hedge*
        #: endpoint, opened on first hedge fire.  Finalized and
        #: stitched alongside the primaries — both are views of the
        #: same pinned tree, so the union is sound.
        self.hedge_sessions: Dict[int, Tuple[RemoteIsp, int]] = {}
        self.touched_s = time.monotonic()

    def touch(self) -> None:
        self.touched_s = time.monotonic()

    def all_sessions(self) -> List[Tuple[RemoteIsp, int]]:
        """Every remote session this fleet session opened, primaries
        first, ordered by shard id (stitch determinism)."""
        pairs = [
            self.shard_sessions[sid]
            for sid in sorted(self.shard_sessions)
        ]
        pairs.extend(
            self.hedge_sessions[sid]
            for sid in sorted(self.hedge_sessions)
        )
        return pairs


class FleetIsp:
    """The fan-out router behind the standard ISP surface."""

    def __init__(
        self,
        shard_map: ShardMap,
        handle_factory: Optional[HandleFactory] = None,
        sync_fns: Optional[Dict[int, SyncFn]] = None,
        config: Optional[ResilienceConfig] = None,
        health: Optional[HealthTracker] = None,
    ) -> None:
        if not shard_map.shards:
            raise FleetError("shard map lists no shards")
        self.config = config or ResilienceConfig()
        self._handle_factory = handle_factory or self.config.make_handle
        self.health = health
        self.sessions = SessionRegistry("fleet.sessions", "fleet.router")
        #: Direct per-shard sync callables (in-process fleets).  When
        #: absent, ``sync_update`` refuses: the router never invents a
        #: write path.
        self.sync_fns = sync_fns or {}
        self._synced: Dict[int, int] = {}  # shard_id -> last acked version
        #: Bumped by :meth:`adopt_shard_map`; sessions pin it at open.
        self.epoch = 1
        self._hedge_policy = HedgePolicy(
            floor_s=self.config.hedge_floor_s,
            window=self.config.hedge_window,
            min_samples=self.config.hedge_min_samples,
            fallback_delay_s=max(
                self.config.hedge_floor_s, self.config.timeout_s / 4
            ),
        )
        self._install_shard_map(shard_map)

    def _install_shard_map(self, shard_map: ShardMap) -> None:
        self.shard_map = shard_map
        self.partitioner = shard_map.partitioner()
        self._primaries: Dict[int, RemoteIsp] = {}
        self._replicas: Dict[int, List[RemoteIsp]] = {}
        self._primary_endpoints: Dict[int, Endpoint] = {}
        self._replica_endpoints: Dict[int, List[Endpoint]] = {}
        self._handles_by_key: Dict[str, RemoteIsp] = {}
        for shard in shard_map.shards:
            primary = self._handle_factory(shard.primary)
            self._primaries[shard.shard_id] = primary
            self._primary_endpoints[shard.shard_id] = shard.primary
            self._handles_by_key[_health_key(shard.primary)] = primary
            replicas = []
            for endpoint in shard.replicas:
                replica = self._handle_factory(endpoint)
                replicas.append(replica)
                self._handles_by_key[_health_key(endpoint)] = replica
            self._replicas[shard.shard_id] = replicas
            self._replica_endpoints[shard.shard_id] = list(shard.replicas)

    def handle_for(self, key: str) -> Optional[RemoteIsp]:
        """The data-path handle serving ``"host:port"``, if any —
        health probing consults its traffic before spending an active
        probe on an endpoint that is demonstrably alive."""
        return self._handles_by_key.get(key)

    def adopt_shard_map(self, shard_map: ShardMap) -> None:
        """Install a newer routing epoch (failover promotion).

        Rebuilds every endpoint handle from the new map and bumps
        :attr:`epoch`: sessions opened under the old map abort with
        :class:`~repro.errors.EpochError` at their next touch rather
        than stitch per-shard proofs across two topologies.  Old
        handles are closed — their in-flight calls surface as typed
        connection errors, which the aborting session reports anyway.
        """
        if shard_map.version <= self.shard_map.version:
            raise FleetError(
                f"refusing shard map downgrade (have version "
                f"{self.shard_map.version}, offered {shard_map.version})"
            )
        old_handles = list(self._primaries.values())
        for handles in self._replicas.values():
            old_handles.extend(handles)
        self._install_shard_map(shard_map)
        self.epoch += 1
        logger.warning(
            "adopted shard map version %d (epoch %d)",
            shard_map.version, self.epoch,
        )
        for handle in old_handles:
            self._close_handle(handle)

    @staticmethod
    def _close_handle(handle) -> None:
        close = getattr(handle, "close", None)
        if close is None:
            return  # in-process test fake
        try:
            close()
        except OSError:  # pragma: no cover - close is best-effort
            pass

    def close(self) -> None:
        # Finalize every outstanding fleet session first so the
        # lazily-opened per-shard sessions underneath are released —
        # otherwise each shard's session table keeps pinning snapshot
        # roots until its own idle sweep fires.
        self.prune_sessions(0.0)
        for handle in self._primaries.values():
            self._close_handle(handle)
        for handles in self._replicas.values():
            for handle in handles:
                self._close_handle(handle)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def shard_for(self, key: str) -> int:
        shard_id = self.partitioner(key)
        if shard_id not in self._primaries:
            raise FleetError(
                f"key {key!r} maps to unknown shard {shard_id}"
            )
        return shard_id

    def shard_for_page(self, path: str, page_id: int) -> int:
        """The shard owning one page's *content* (page-granular key)."""
        return self.shard_for(page_key(path, page_id))

    def _session(self, session_id: int) -> RouterSession:
        session = self.sessions.get(session_id)
        if session is None:
            raise NetworkError(f"unknown session {session_id}")
        if session.epoch != self.epoch:
            self.sessions.remove(session_id)
            if obs.ACTIVE:
                obs.inc("fleet.epoch.abort")
            raise EpochError(
                f"shard map epoch changed ({session.epoch} -> "
                f"{self.epoch}) while session {session_id} was in "
                f"flight; reopen and retry"
            )
        session.touch()
        return session

    def _replica_is_up(self, shard_id: int, index: int) -> bool:
        if self.health is None:
            return True
        endpoints = self._replica_endpoints.get(shard_id, ())
        if index >= len(endpoints):
            return True
        return self.health.is_up(_health_key(endpoints[index]))

    def _pick_endpoint(
        self, shard_id: int, version: int,
        deadline: Optional[Deadline] = None,
    ) -> Tuple[RemoteIsp, bool]:
        """The endpoint a read session on ``shard_id`` should use.

        Prefers a replica that has caught up to the pinned ``version``
        (offloading the primary); every lagging replica is counted as
        ``fleet.replica.stale`` and the primary serves instead.  An
        unreachable replica — or one the health tracker already
        declared down — is treated the same as a stale one.
        """
        for index, replica in enumerate(self._replicas.get(shard_id, ())):
            if not self._replica_is_up(shard_id, index):
                continue
            try:
                certificate = self._with_deadline(
                    replica.get_certificate, deadline
                )
            except (ReproError, OSError):
                continue
            if certificate.version >= version:
                return replica, True
            if obs.ACTIVE:
                obs.inc("fleet.replica.stale")
        return self._primaries[shard_id], False

    @staticmethod
    def _with_deadline(fn, deadline: Optional[Deadline], *args):
        """Call a handle method, passing ``deadline`` only when armed
        (in-process test fakes don't take the kwarg)."""
        if deadline is None:
            return fn(*args)
        return fn(*args, deadline=deadline)

    def _shard_session(
        self,
        session: RouterSession,
        shard_id: int,
        deadline: Optional[Deadline] = None,
    ) -> Tuple[RemoteIsp, int]:
        """The (handle, remote session) for one shard, opened on first
        touch and pinned to the fleet session's version."""
        held = session.shard_sessions.get(shard_id)
        if held is not None:
            return held
        if faults.ACTIVE:
            # Severs fan-out to a shard mid-query: the injected fault
            # travels to the client as a typed wire error and the query
            # aborts — never a partial, unverifiable answer.
            faults.fire(
                "fleet.router.fanout",
                shard=shard_id, session=session.session_id,
            )
        handle, is_replica = self._pick_endpoint(
            shard_id, session.version, deadline
        )
        try:
            remote_sid = self._open_pinned(handle, session.version, deadline)
        except NetworkError:
            if not is_replica:
                raise
            # The replica raced past its certificate check (or died
            # mid-open); the primary is authoritative.
            handle = self._primaries[shard_id]
            remote_sid = self._open_pinned(handle, session.version, deadline)
            is_replica = False
        if obs.ACTIVE:
            obs.inc("fleet.router.fanout")
            if is_replica:
                obs.inc("fleet.replica.read")
        session.shard_sessions[shard_id] = (handle, remote_sid)
        return handle, remote_sid

    def _open_pinned(
        self, handle, version: int, deadline: Optional[Deadline]
    ) -> int:
        if deadline is None:
            return handle.open_session(expected_version=version)
        return handle.open_session(
            expected_version=version, deadline=deadline
        )

    # ------------------------------------------------------------------
    # Hedged reads
    # ------------------------------------------------------------------

    def _hedge_possible(self, shard_id: int, serving: RemoteIsp) -> bool:
        """Does this shard have anywhere to hedge?  Runs on *every*
        page read, so it answers with an identity compare when it can:
        a replica-served shard always has its primary as a hedge
        target.  Only the primary-served case (every replica stale or
        down — already a degraded shard) consults the health tracker,
        whose verdict costs a lock acquisition.
        """
        if self._primaries[shard_id] is not serving:
            return True
        return any(
            replica is not serving and self._replica_is_up(shard_id, index)
            for index, replica in enumerate(
                self._replicas.get(shard_id, ())
            )
        )

    def _hedge_candidates(
        self, shard_id: int, serving: RemoteIsp
    ) -> List[RemoteIsp]:
        """Endpoints of ``shard_id`` a hedge could go to (healthy, not
        the one already serving this session)."""
        candidates: List[RemoteIsp] = []
        primary = self._primaries[shard_id]
        if primary is not serving:
            candidates.append(primary)
        for index, replica in enumerate(self._replicas.get(shard_id, ())):
            if replica is serving:
                continue
            if not self._replica_is_up(shard_id, index):
                continue
            candidates.append(replica)
        return candidates

    def _hedge_session(
        self,
        session: RouterSession,
        shard_id: int,
        candidates: List[RemoteIsp],
        deadline: Optional[Deadline],
    ) -> Tuple[RemoteIsp, int]:
        """The hedge endpoint's remote session, opened on first fire
        and reused by every later hedge against the same shard."""
        held = session.hedge_sessions.get(shard_id)
        if held is not None:
            return held
        last: Optional[Exception] = None
        for handle in candidates:
            try:
                sid = self._open_pinned(handle, session.version, deadline)
            except (ReproError, OSError) as error:
                last = error
                continue
            session.hedge_sessions[shard_id] = (handle, sid)
            return handle, sid
        raise FleetError(
            f"no hedge endpoint available for shard {shard_id}"
            + (f" (last: {last})" if last else "")
        )

    # ------------------------------------------------------------------
    # The ISP client-facing surface
    # ------------------------------------------------------------------

    def get_certificate(
        self, deadline: Optional[Deadline] = None
    ) -> V2fsCertificate:
        """The fleet's current certificate, from any live member.

        Shard 0's primary is the canonical source, but every primary
        and replica adopts each certificate in the same fan-out and
        the client verifies the signature regardless of who served it
        — so a dead shard-0 primary must not take certificate service
        (and with it ``open_session``) down with it.
        """
        last: Optional[Exception] = None
        for shard_id in sorted(self._primaries):
            try:
                return self._with_deadline(
                    self._primaries[shard_id].get_certificate, deadline
                )
            except (ReproError, OSError) as error:
                last = error
        for shard_id in sorted(self._replicas):
            for replica in self._replicas[shard_id]:
                try:
                    return self._with_deadline(
                        replica.get_certificate, deadline
                    )
                except (ReproError, OSError) as error:
                    last = error
        raise FleetError(
            f"no fleet member could serve a certificate (last: {last})"
        )

    def open_session(
        self,
        expected_version: Optional[int] = None,
        deadline: Optional[Deadline] = None,
    ) -> int:
        certificate = self.get_certificate(deadline)
        if (
            expected_version is not None
            and certificate.version != expected_version
        ):
            raise NetworkError(
                f"certificate superseded (now version "
                f"{certificate.version}, client validated "
                f"{expected_version}); refetch and retry"
            )
        session = RouterSession(
            self.sessions.next_id(), certificate.version, self.epoch
        )
        self.sessions.insert(session)
        return session.session_id

    def get_file_meta(
        self,
        session_id: int,
        path: str,
        deadline: Optional[Deadline] = None,
    ) -> Tuple[bool, int, int]:
        session = self._session(session_id)
        handle, sid = self._shard_session(
            session, self.shard_for(path), deadline
        )
        return self._with_deadline(
            handle.get_file_meta, deadline, sid, path
        )

    def get_page(
        self,
        session_id: int,
        path: str,
        page_id: int,
        deadline: Optional[Deadline] = None,
    ) -> bytes:
        """One page read, hedged as a *tied request*.

        When the shard has another healthy endpoint, the serving
        endpoint's read is capped at the hedging policy's adaptive p99
        delay (via the per-call deadline machinery, so the abandoned
        read fails typed and its socket is discarded, never reused
        desynced).  A read that outlives the cap is re-issued inline to
        the hedge endpoint with the caller's remaining budget.  Unlike
        thread-racing (:func:`~repro.fleet.resilience.hedged_call`)
        this costs no thread spawn on the ~99% of reads that beat the
        cap — the fault-free overhead budget is a few microseconds per
        read.  A consistently-slow endpoint accumulates breaker
        failures from its abandoned reads and starts failing fast,
        which is exactly the failover pressure we want.  The total
        elapsed time is observed either way, so a uniformly slow fleet
        raises the estimate instead of hedging every read twice.
        """
        session = self._session(session_id)
        shard_id = self.shard_for_page(path, page_id)
        handle, sid = self._shard_session(session, shard_id, deadline)
        # The cap requires the handle to enforce a per-call deadline
        # (RemoteIsp does; bare in-process fakes don't and get the
        # plain read path).  The candidate list itself — which may
        # consult the health tracker — is only built when a hedge
        # actually fires; the fast path just asks whether one exists.
        hedged = (
            self.config.hedge_enabled
            and getattr(handle, "supports_deadline", False)
            and self._hedge_possible(shard_id, handle)
        )
        start = time.monotonic()
        if not hedged:
            page = self._with_deadline(
                handle.get_page, deadline, sid, path, page_id
            )
            self._hedge_policy.observe(time.monotonic() - start)
            return page
        cap_s = self._hedge_policy.delay_s()
        if deadline is not None:
            cap_s = min(cap_s, deadline.remaining())
        try:
            page = handle.get_page(
                sid, path, page_id, deadline=Deadline.after(cap_s)
            )
        except (ReproError, OSError) as primary_error:
            if deadline is not None:
                deadline.check("hedged page read")
            if obs.ACTIVE:
                obs.inc("fleet.hedge.fired")
            try:
                hedge_handle, hedge_sid = self._hedge_session(
                    session,
                    shard_id,
                    self._hedge_candidates(shard_id, handle),
                    deadline,
                )
                page = self._with_deadline(
                    hedge_handle.get_page, deadline,
                    hedge_sid, path, page_id,
                )
            except (ReproError, OSError):
                # The hedge was a bonus attempt, not the authority on
                # what went wrong: the primary's error surfaces.
                raise primary_error
            if obs.ACTIVE:
                obs.inc("fleet.hedge.won")
        self._hedge_policy.observe(time.monotonic() - start)
        return page

    def validate_path(
        self, session_id, path, page_id, digs_path,
        deadline: Optional[Deadline] = None,
    ):
        # The fallback answer serves page bytes, so this routes by the
        # page key like ``get_page`` (the skeleton part could be served
        # anywhere — every shard folds the full digest tree).
        session = self._session(session_id)
        shard_id = self.shard_for_page(path, page_id)
        handle, sid = self._shard_session(session, shard_id, deadline)
        return self._with_deadline(
            handle.validate_path, deadline, sid, path, page_id, digs_path
        )

    def finalize_session(
        self, session_id: int, deadline: Optional[Deadline] = None
    ) -> AdsProof:
        session = self.sessions.remove(session_id)
        if session is None:
            raise NetworkError(f"unknown session {session_id}")
        if session.epoch != self.epoch:
            if obs.ACTIVE:
                obs.inc("fleet.epoch.abort")
            raise EpochError(
                f"shard map epoch changed ({session.epoch} -> "
                f"{self.epoch}) while session {session_id} was in "
                f"flight; reopen and retry"
            )
        if not session.shard_sessions:
            # A query that touched nothing still needs a proof anchored
            # at the pinned root; any shard's empty VO is exactly that.
            self._shard_session(session, 0, deadline)
        pairs = session.all_sessions()
        proofs = []
        for index, (handle, sid) in enumerate(pairs):
            # Sequential fan-in: each remaining sub-call gets an equal
            # slice of the remaining budget, so one slow shard cannot
            # spend the whole deadline before the others are collected.
            sub = split_deadline(deadline, len(pairs) - index)
            proofs.append(
                self._with_deadline(handle.finalize_session, sub, sid)
            )
        stitched = self._stitch(proofs)
        if obs.ACTIVE:
            obs.observe("fleet.router.stitch.shards", len(proofs))
            obs.observe(
                "fleet.router.stitch.bytes", stitched.byte_size()
            )
        return stitched

    def _stitch(self, proofs: List[AdsProof]) -> AdsProof:
        """Merge the per-shard VOs (overridden by collusive routers in
        the adversarial suite; the honest router cross-checks)."""
        return stitch_proofs(proofs, verify=True)

    # ------------------------------------------------------------------
    # Write path: fan the CI batch to every shard primary
    # ------------------------------------------------------------------

    def sync_update(
        self,
        writes: Dict[str, Dict[int, bytes]],
        new_sizes: Dict[str, int],
        certificate: V2fsCertificate,
    ) -> None:
        """Apply one certified batch on every shard primary.

        Per-shard idempotent: a shard that already acked this version
        is skipped, so retrying after a partial failure completes the
        stragglers instead of double-applying.  Any shard still failing
        raises :class:`FleetError` — the fleet never silently serves a
        mixed-version snapshot (each shard refuses a batch that does
        not reproduce the certified root, so a partial fan-out can only
        lag, not diverge).
        """
        if not self.sync_fns:
            raise FleetError(
                "router has no write path to the shard primaries"
            )
        failures: List[str] = []
        acked = 0
        for shard_id in sorted(self.sync_fns):
            if self._synced.get(shard_id) == certificate.version:
                acked += 1
                continue
            try:
                self.sync_fns[shard_id](writes, new_sizes, certificate)
            except ReproError as error:
                logger.warning(
                    "shard %d failed sync to version %d: %s",
                    shard_id, certificate.version, error,
                )
                failures.append(f"shard {shard_id}: {error}")
                continue
            self._synced[shard_id] = certificate.version
            acked += 1
        if obs.ACTIVE:
            obs.observe("fleet.sync.shards", acked)
        if failures:
            raise FleetError(
                f"sync_update to version {certificate.version} failed "
                f"on {len(failures)} shard(s): " + "; ".join(failures)
            )

    # ------------------------------------------------------------------
    # Housekeeping
    # ------------------------------------------------------------------

    def prune_sessions(self, idle_ttl_s: float) -> int:
        """Sweep fleet sessions idle past ``idle_ttl_s``.

        A vanished client strands its per-shard (and hedge) sessions,
        which pin snapshots on every touched shard; the sweep finalizes
        them best-effort to release those roots.
        """
        cutoff = time.monotonic() - idle_ttl_s
        doomed: List[RouterSession] = []

        def stale(session) -> bool:
            if session.touched_s <= cutoff:
                doomed.append(session)
                return True
            return False

        count = self.sessions.prune(stale)
        for session in doomed:
            for handle, sid in session.all_sessions():
                try:
                    handle.finalize_session(sid)
                except (ReproError, OSError):
                    pass  # best-effort release
        return count


class FleetRouterServer(RpcIspServer):
    """The router behind the unmodified wire protocol.

    Dispatch is **lock-free**: every handler call performs remote I/O
    to shards, and holding the coarse server lock across a remote call
    would serialize the whole fleet behind one slow shard (and
    deadlock a router that ever called itself).  The FleetIsp's shared
    state is confined to the session registry (internally locked) and
    per-session dicts touched by one client at a time.

    A client deadline received in the frame header is rebased and
    handed to the FleetIsp surface, which spends it across the whole
    shard fan-out.
    """

    def _serve(
        self,
        kind: int,
        args: tuple,
        deadline: Optional[Deadline] = None,
    ) -> bytes:
        if kind == codec.REQ_SHARD_MAP:
            return codec.encode_shard_map(self.isp.shard_map)
        if deadline is not None:
            isp = self.isp
            if kind == codec.REQ_GET_CERTIFICATE:
                return codec.encode_certificate(
                    isp.get_certificate(deadline=deadline)
                )
            if kind == codec.REQ_OPEN_SESSION:
                return codec.encode_session(
                    isp.open_session(*args, deadline=deadline)
                )
            if kind == codec.REQ_GET_FILE_META:
                return codec.encode_file_meta(
                    *isp.get_file_meta(*args, deadline=deadline)
                )
            if kind == codec.REQ_GET_PAGE:
                return codec.encode_page(
                    isp.get_page(*args, deadline=deadline)
                )
            if kind == codec.REQ_VALIDATE_PATH:
                return codec.encode_validation(
                    isp.validate_path(*args, deadline=deadline)
                )
            if kind == codec.REQ_FINALIZE_SESSION:
                return codec.encode_vo(
                    isp.finalize_session(*args, deadline=deadline)
                )
        return self._dispatch(kind, args)


class AsyncFleetRouterServer(FleetRouterServer, AsyncIspServer):
    """The fleet router on the event loop.

    The MRO composes the two overrides cleanly: transport and lifecycle
    come from :class:`~repro.serve.server.AsyncIspServer` (event loop,
    pipelining, worker pool), dispatch comes from
    :class:`FleetRouterServer` (lock-free fan-out with deadline
    slicing).  Proof batching stays off automatically —
    :class:`FleetIsp` has no ``serve_batch`` surface, because
    coalescing belongs on the shards, each of which can run its own
    :class:`AsyncIspServer` and batch locally.
    """


__all__ = [
    "AsyncFleetRouterServer",
    "FleetIsp",
    "FleetRouterServer",
    "RouterSession",
    "SyncFn",
]
