"""The stateless fan-out router: one ISP surface over many shards.

:class:`FleetIsp` exposes the exact client-facing surface of
:class:`~repro.isp.server.IspServer`, so the unmodified
:class:`~repro.client.query_client.QueryClient` (and the unmodified
wire protocol, via :class:`FleetRouterServer`) work against a sharded
fleet without knowing it is one:

* ``open_session`` pins a *fleet* session to one certificate version;
  per-shard sessions open lazily underneath, each forced to the same
  version (``open_session(expected_version=...)``), so every shard
  serves the same snapshot;
* reads route to the owning shard — a fresh replica when one is caught
  up to the pinned version (read/write splitting), the primary
  otherwise;
* ``finalize_session`` collects every touched shard's consolidated VO
  and stitches them (:mod:`repro.fleet.stitch`) into one proof the
  client verifies against the certificate exactly as before;
* ``sync_update`` fans the CI's batch to every shard primary and
  merges the acks, retry-idempotent per shard.

"Stateless" means *no authenticated state*: the router holds routing
tables and session bookkeeping, but no ADS and no trust.  It is as
untrusted as the ISP it fronts — the adversarial suite runs collusive
routers, and the client catches them.
"""

from __future__ import annotations

import logging
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.certificate import V2fsCertificate
from repro.errors import FleetError, NetworkError, ReproError
from repro.faults import registry as faults
from repro.fleet.partition import Endpoint, ShardMap, page_key
from repro.fleet.stitch import stitch_proofs
from repro.isp.sessions import SessionRegistry
from repro.merkle.proof import AdsProof
from repro.obs import metrics as obs
from repro.rpc import codec
from repro.rpc.client import RemoteIsp
from repro.rpc.server import RpcIspServer

logger = logging.getLogger("repro.fleet")

#: Builds the proxy for one endpoint (swap for timeouts or test fakes).
HandleFactory = Callable[[Endpoint], RemoteIsp]

#: One shard's share of a ``sync_update`` fan-out (provided by the
#: lifecycle: wraps the shard server's lock, the shard sync, and the
#: replication shipment).
SyncFn = Callable[[dict, dict, V2fsCertificate], None]


def _default_handle(endpoint: Endpoint) -> RemoteIsp:
    return RemoteIsp(endpoint[0], endpoint[1])


class RouterSession:
    """Router-side state of one fleet query session."""

    def __init__(self, session_id: int, version: int) -> None:
        self.session_id = session_id
        #: The certificate version every shard session must pin.
        self.version = version
        #: shard_id -> (handle, remote session id), opened lazily.
        self.shard_sessions: Dict[int, Tuple[RemoteIsp, int]] = {}
        self.touched_s = time.monotonic()

    def touch(self) -> None:
        self.touched_s = time.monotonic()


class FleetIsp:
    """The fan-out router behind the standard ISP surface."""

    def __init__(
        self,
        shard_map: ShardMap,
        handle_factory: HandleFactory = _default_handle,
        sync_fns: Optional[Dict[int, SyncFn]] = None,
    ) -> None:
        if not shard_map.shards:
            raise FleetError("shard map lists no shards")
        self.shard_map = shard_map
        self.partitioner = shard_map.partitioner()
        self.sessions = SessionRegistry("fleet.sessions", "fleet.router")
        #: Direct per-shard sync callables (in-process fleets).  When
        #: absent, ``sync_update`` refuses: the router never invents a
        #: write path.
        self.sync_fns = sync_fns or {}
        self._synced: Dict[int, int] = {}  # shard_id -> last acked version
        self._primaries: Dict[int, RemoteIsp] = {}
        self._replicas: Dict[int, List[RemoteIsp]] = {}
        for shard in shard_map.shards:
            self._primaries[shard.shard_id] = handle_factory(shard.primary)
            self._replicas[shard.shard_id] = [
                handle_factory(endpoint) for endpoint in shard.replicas
            ]

    def close(self) -> None:
        for handle in self._primaries.values():
            handle.close()
        for handles in self._replicas.values():
            for handle in handles:
                handle.close()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def shard_for(self, key: str) -> int:
        shard_id = self.partitioner(key)
        if shard_id not in self._primaries:
            raise FleetError(
                f"key {key!r} maps to unknown shard {shard_id}"
            )
        return shard_id

    def shard_for_page(self, path: str, page_id: int) -> int:
        """The shard owning one page's *content* (page-granular key)."""
        return self.shard_for(page_key(path, page_id))

    def _session(self, session_id: int) -> RouterSession:
        session = self.sessions.get(session_id)
        if session is None:
            raise NetworkError(f"unknown session {session_id}")
        session.touch()
        return session

    def _pick_endpoint(
        self, shard_id: int, version: int
    ) -> Tuple[RemoteIsp, bool]:
        """The endpoint a read session on ``shard_id`` should use.

        Prefers a replica that has caught up to the pinned ``version``
        (offloading the primary); every lagging replica is counted as
        ``fleet.replica.stale`` and the primary serves instead.  An
        unreachable replica is treated the same as a stale one.
        """
        for replica in self._replicas.get(shard_id, ()):
            try:
                certificate = replica.get_certificate()
            except (ReproError, OSError):
                continue
            if certificate.version >= version:
                return replica, True
            if obs.ACTIVE:
                obs.inc("fleet.replica.stale")
        return self._primaries[shard_id], False

    def _shard_session(
        self, session: RouterSession, shard_id: int
    ) -> Tuple[RemoteIsp, int]:
        """The (handle, remote session) for one shard, opened on first
        touch and pinned to the fleet session's version."""
        held = session.shard_sessions.get(shard_id)
        if held is not None:
            return held
        if faults.ACTIVE:
            # Severs fan-out to a shard mid-query: the injected fault
            # travels to the client as a typed wire error and the query
            # aborts — never a partial, unverifiable answer.
            faults.fire(
                "fleet.router.fanout",
                shard=shard_id, session=session.session_id,
            )
        handle, is_replica = self._pick_endpoint(shard_id, session.version)
        try:
            remote_sid = handle.open_session(
                expected_version=session.version
            )
        except NetworkError:
            if not is_replica:
                raise
            # The replica raced past its certificate check (or died
            # mid-open); the primary is authoritative.
            handle = self._primaries[shard_id]
            remote_sid = handle.open_session(
                expected_version=session.version
            )
            is_replica = False
        if obs.ACTIVE:
            obs.inc("fleet.router.fanout")
            if is_replica:
                obs.inc("fleet.replica.read")
        session.shard_sessions[shard_id] = (handle, remote_sid)
        return handle, remote_sid

    # ------------------------------------------------------------------
    # The ISP client-facing surface
    # ------------------------------------------------------------------

    def get_certificate(self) -> V2fsCertificate:
        # Shard 0's primary is the canonical certificate source; all
        # primaries adopt each certificate in the same fan-out, and the
        # client verifies the signature regardless of who served it.
        return self._primaries[0].get_certificate()

    def open_session(self, expected_version: Optional[int] = None) -> int:
        certificate = self.get_certificate()
        if (
            expected_version is not None
            and certificate.version != expected_version
        ):
            raise NetworkError(
                f"certificate superseded (now version "
                f"{certificate.version}, client validated "
                f"{expected_version}); refetch and retry"
            )
        session = RouterSession(
            self.sessions.next_id(), certificate.version
        )
        self.sessions.insert(session)
        return session.session_id

    def get_file_meta(
        self, session_id: int, path: str
    ) -> Tuple[bool, int, int]:
        session = self._session(session_id)
        handle, sid = self._shard_session(session, self.shard_for(path))
        return handle.get_file_meta(sid, path)

    def get_page(self, session_id: int, path: str, page_id: int) -> bytes:
        session = self._session(session_id)
        shard_id = self.shard_for_page(path, page_id)
        handle, sid = self._shard_session(session, shard_id)
        return handle.get_page(sid, path, page_id)

    def validate_path(self, session_id, path, page_id, digs_path):
        # The fallback answer serves page bytes, so this routes by the
        # page key like ``get_page`` (the skeleton part could be served
        # anywhere — every shard folds the full digest tree).
        session = self._session(session_id)
        shard_id = self.shard_for_page(path, page_id)
        handle, sid = self._shard_session(session, shard_id)
        return handle.validate_path(sid, path, page_id, digs_path)

    def finalize_session(self, session_id: int) -> AdsProof:
        session = self.sessions.remove(session_id)
        if session is None:
            raise NetworkError(f"unknown session {session_id}")
        if not session.shard_sessions:
            # A query that touched nothing still needs a proof anchored
            # at the pinned root; any shard's empty VO is exactly that.
            self._shard_session(session, 0)
        proofs = []
        for shard_id in sorted(session.shard_sessions):
            handle, sid = session.shard_sessions[shard_id]
            proofs.append(handle.finalize_session(sid))
        stitched = self._stitch(proofs)
        if obs.ACTIVE:
            obs.observe("fleet.router.stitch.shards", len(proofs))
            obs.observe(
                "fleet.router.stitch.bytes", stitched.byte_size()
            )
        return stitched

    def _stitch(self, proofs: List[AdsProof]) -> AdsProof:
        """Merge the per-shard VOs (overridden by collusive routers in
        the adversarial suite; the honest router cross-checks)."""
        return stitch_proofs(proofs, verify=True)

    # ------------------------------------------------------------------
    # Write path: fan the CI batch to every shard primary
    # ------------------------------------------------------------------

    def sync_update(
        self,
        writes: Dict[str, Dict[int, bytes]],
        new_sizes: Dict[str, int],
        certificate: V2fsCertificate,
    ) -> None:
        """Apply one certified batch on every shard primary.

        Per-shard idempotent: a shard that already acked this version
        is skipped, so retrying after a partial failure completes the
        stragglers instead of double-applying.  Any shard still failing
        raises :class:`FleetError` — the fleet never silently serves a
        mixed-version snapshot (each shard refuses a batch that does
        not reproduce the certified root, so a partial fan-out can only
        lag, not diverge).
        """
        if not self.sync_fns:
            raise FleetError(
                "router has no write path to the shard primaries"
            )
        failures: List[str] = []
        acked = 0
        for shard_id in sorted(self.sync_fns):
            if self._synced.get(shard_id) == certificate.version:
                acked += 1
                continue
            try:
                self.sync_fns[shard_id](writes, new_sizes, certificate)
            except ReproError as error:
                logger.warning(
                    "shard %d failed sync to version %d: %s",
                    shard_id, certificate.version, error,
                )
                failures.append(f"shard {shard_id}: {error}")
                continue
            self._synced[shard_id] = certificate.version
            acked += 1
        if obs.ACTIVE:
            obs.observe("fleet.sync.shards", acked)
        if failures:
            raise FleetError(
                f"sync_update to version {certificate.version} failed "
                f"on {len(failures)} shard(s): " + "; ".join(failures)
            )

    # ------------------------------------------------------------------
    # Housekeeping
    # ------------------------------------------------------------------

    def prune_sessions(self, idle_ttl_s: float) -> int:
        """Sweep fleet sessions idle past ``idle_ttl_s``.

        A vanished client strands its per-shard sessions, which pin
        snapshots on every touched shard; the sweep finalizes them
        best-effort to release those roots.
        """
        cutoff = time.monotonic() - idle_ttl_s
        doomed: List[RouterSession] = []

        def stale(session) -> bool:
            if session.touched_s <= cutoff:
                doomed.append(session)
                return True
            return False

        count = self.sessions.prune(stale)
        for session in doomed:
            for handle, sid in session.shard_sessions.values():
                try:
                    handle.finalize_session(sid)
                except (ReproError, OSError):
                    pass  # best-effort release
        return count


class FleetRouterServer(RpcIspServer):
    """The router behind the unmodified wire protocol.

    Dispatch is **lock-free**: every handler call performs remote I/O
    to shards, and holding the coarse server lock across a remote call
    would serialize the whole fleet behind one slow shard (and
    deadlock a router that ever called itself).  The FleetIsp's shared
    state is confined to the session registry (internally locked) and
    per-session dicts touched by one client at a time.
    """

    def _serve(self, kind: int, args: tuple) -> bytes:
        if kind == codec.REQ_SHARD_MAP:
            return codec.encode_shard_map(self.isp.shard_map)
        return self._dispatch(kind, args)


__all__ = [
    "FleetIsp",
    "FleetRouterServer",
    "RouterSession",
    "SyncFn",
]
