"""Heartbeat-driven membership and health tracking for the fleet.

:class:`HealthTracker` probes every registered endpoint (a cheap RPC
``ping``) and keeps a per-endpoint up/down verdict derived from
*consecutive* missed heartbeats — one dropped probe is noise, a streak
is an outage.  Two consumers read it:

* the router skips replicas marked down when picking a read endpoint
  (and when choosing a hedge target), so reads stop burning timeouts
  on a dead copy;
* the lifecycle watches for a *primary* going down and triggers
  replica promotion (:meth:`~repro.fleet.lifecycle.Fleet.promote_replica`)
  — certificate-verified failover, see :mod:`repro.fleet.replication`.

The tracker is deliberately **advisory**: every verdict is a routing
hint, never a trust statement.  A wrong verdict misroutes a read to a
dead or stale endpoint, which fails typed or fails verification — the
V²FS soundness argument does not depend on health being right.

Probing runs either from an owned background thread
(:meth:`start`/:meth:`stop`) or by explicit :meth:`probe_once` ticks —
chaos schedules use the latter so heartbeat timing is deterministic
under a seeded schedule.  The ``fleet.health.miss`` failpoint force-
drops probes to model heartbeat loss without killing the endpoint.
"""

from __future__ import annotations

import logging
import threading
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.faults import registry as faults
from repro.faults.registry import InjectedFault
from repro.obs import metrics as obs
from repro.sanitize.runtime import SanLock, SanThread

logger = logging.getLogger("repro.fleet")

#: One endpoint's probe: raises (any ReproError/OSError) on failure.
ProbeFn = Callable[[], None]

#: Callback fired on an up→down transition (endpoint key).
DownFn = Callable[[str], None]


class EndpointHealth:
    """Mutable health record for one endpoint."""

    __slots__ = ("key", "up", "missed", "probes")

    def __init__(self, key: str) -> None:
        self.key = key
        self.up = True  # optimistic: endpoints start healthy
        self.missed = 0
        self.probes = 0


class HealthTracker:
    """Consecutive-miss health verdicts over registered probes."""

    def __init__(
        self,
        miss_threshold: int = 2,
        on_down: Optional[DownFn] = None,
        on_up: Optional[DownFn] = None,
    ) -> None:
        if miss_threshold < 1:
            raise ValueError("miss_threshold must be >= 1")
        self.miss_threshold = miss_threshold
        self.on_down = on_down
        self.on_up = on_up
        self._lock = SanLock("fleet.health")
        self._probes: Dict[str, ProbeFn] = {}  # repro: guarded-by(_lock)
        self._records: Dict[str, EndpointHealth] = {}  # repro: guarded-by(_lock)
        self._thread: Optional[threading.Thread] = None
        self._running = threading.Event()
        self._stop_gate = threading.Event()

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def attach(self, key: str, probe: ProbeFn) -> None:
        with self._lock:
            self._probes[key] = probe
            self._records.setdefault(key, EndpointHealth(key))

    def detach(self, key: str) -> None:
        with self._lock:
            self._probes.pop(key, None)
            self._records.pop(key, None)

    def is_up(self, key: str) -> bool:
        """Current verdict; unknown endpoints are optimistically up."""
        with self._lock:
            record = self._records.get(key)
            return True if record is None else record.up

    def down_keys(self) -> List[str]:
        with self._lock:
            return sorted(
                key
                for key, record in self._records.items()
                if not record.up
            )

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------

    def probe_once(self) -> List[Tuple[str, bool]]:
        """Probe every endpoint once; returns verdict *transitions*.

        Each returned ``(key, up)`` pair is an endpoint whose verdict
        changed this round.  Transition callbacks run outside the
        tracker lock — they may call back into the fleet (promotion
        rewires shard maps) and must not deadlock against readers.
        """
        with self._lock:
            probes = list(self._probes.items())
        transitions: List[Tuple[str, bool]] = []
        for key, probe in probes:
            if obs.ACTIVE:
                obs.inc("fleet.health.probe")
            ok = True
            try:
                if faults.ACTIVE:
                    faults.fire("fleet.health.miss", endpoint=key)
                probe()
            except (ReproError, InjectedFault, OSError):
                ok = False
            transition = self._record(key, ok)
            if transition is not None:
                transitions.append(transition)
        for key, up in transitions:
            if up:
                logger.warning("endpoint %s back up", key)
                if obs.ACTIVE:
                    obs.inc("fleet.health.up")
                if self.on_up is not None:
                    self.on_up(key)
            else:
                logger.warning(
                    "endpoint %s declared down after %d missed "
                    "heartbeats", key, self.miss_threshold,
                )
                if obs.ACTIVE:
                    obs.inc("fleet.health.down")
                if self.on_down is not None:
                    self.on_down(key)
        return transitions

    def _record(self, key: str, ok: bool) -> Optional[Tuple[str, bool]]:
        with self._lock:
            record = self._records.get(key)
            if record is None:  # detached mid-round
                return None
            record.probes += 1
            if ok:
                record.missed = 0
                if not record.up:
                    record.up = True
                    return (key, True)
                return None
            record.missed += 1
            if record.up and record.missed >= self.miss_threshold:
                record.up = False
                return (key, False)
            return None

    # ------------------------------------------------------------------
    # Background heartbeat loop
    # ------------------------------------------------------------------

    def start(self, interval_s: float = 0.25) -> "HealthTracker":
        if self._thread is not None:
            return self
        self._running.set()
        self._stop_gate.clear()

        def loop() -> None:
            while self._running.is_set():
                self.probe_once()
                # Event.wait doubles as an interruptible sleep.
                self._stop_gate.wait(interval_s)

        self._thread = SanThread(
            target=loop, name="fleet-health", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._running.clear()
        if self._thread is not None:
            self._stop_gate.set()
            self._thread.join(timeout=2.0)
            self._thread = None


__all__ = ["EndpointHealth", "HealthTracker", "ProbeFn"]
