"""Key-space partitioning and the versioned shard map.

A partitioner deterministically assigns every partition *key* to
exactly one shard.  Ownership is decided per **page**, not per file:
the key for a page's content is :func:`page_key`, which appends the
page id to the path behind a ``\\x00`` separator.  Only page *content*
is partitioned — every shard folds the full digest skeleton — so the
granularity of the key decides load spread, nothing else.  Two
strategies:

* **hash** — uniform assignment by the first eight bytes of the key's
  digest, modulo the shard count.  Because the key is page-granular,
  one huge table file spreads across the whole fleet instead of
  pinning its shard (a path-granular hash caps speedup at the largest
  file's share of the read load).
* **range** — contiguous lexicographic ranges split at explicit
  boundary paths (``bounds[i]`` is the first key of shard ``i+1``).
  Page keys sort immediately after their path (``\\x00`` precedes
  every printable byte), so a file's pages stay together on one shard
  except at a ``\\x00``-nudged bound — locality at the cost of
  planning the split (:func:`plan_range_split`).

The :class:`ShardMap` is the versioned, wire-encodable description of
the whole fleet: strategy, boundary paths, and every shard's endpoints
(primary plus read replicas).  The router hands it to any client that
asks (``REQ_SHARD_MAP``), but nothing about it is trusted: routing a
query to the wrong shard yields a typed error or a proof that fails
client verification — never wrong data.
"""

from __future__ import annotations

import bisect
import io
import struct
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.crypto.hashing import hash_bytes
from repro.errors import FleetError, WireFormatError

STRATEGY_HASH = "hash"
STRATEGY_RANGE = "range"

_STRATEGY_TAGS = {STRATEGY_HASH: 0, STRATEGY_RANGE: 1}
_TAG_STRATEGIES = {tag: name for name, tag in _STRATEGY_TAGS.items()}

#: Decoding bounds for untrusted shard-map encodings.
_MAX_SHARDS = 4096
_MAX_REPLICAS = 64
_MAX_TEXT_BYTES = 4096

#: An endpoint is a (host, port) pair.
Endpoint = Tuple[str, int]


def page_key(path: str, page_id: int) -> str:
    """The partition key for one page's *content*.

    ``\\x00`` cannot appear in a path, so page keys never collide with
    paths or with another file's keys, and they sort as a contiguous
    run right after the path itself — hash partitioning spreads a
    file's pages uniformly while range partitioning keeps them with
    their file.
    """
    return f"{path}\x00{page_id}"


class HashPartitioner:
    """Uniform assignment by key digest (strategy ``hash``)."""

    def __init__(self, shard_count: int) -> None:
        if shard_count < 1:
            raise FleetError("a fleet needs at least one shard")
        self.shard_count = shard_count

    def shard_for(self, key: str) -> int:
        digest = hash_bytes(key.encode("utf-8"))
        return int.from_bytes(digest[:8], "big") % self.shard_count


class RangePartitioner:
    """Contiguous lexicographic ranges (strategy ``range``).

    ``bounds`` holds ``shard_count - 1`` strictly increasing boundary
    paths; shard ``i`` owns paths in ``[bounds[i-1], bounds[i])`` with
    the outermost ranges open-ended.
    """

    def __init__(self, shard_count: int, bounds: Sequence[str]) -> None:
        if shard_count < 1:
            raise FleetError("a fleet needs at least one shard")
        if len(bounds) != shard_count - 1:
            raise FleetError(
                f"range partitioner over {shard_count} shards needs "
                f"{shard_count - 1} bounds, got {len(bounds)}"
            )
        if any(bounds[i] >= bounds[i + 1]
               for i in range(len(bounds) - 1)):
            raise FleetError("range bounds must be strictly increasing")
        self.shard_count = shard_count
        self.bounds = tuple(bounds)

    def shard_for(self, key: str) -> int:
        return bisect.bisect_right(self.bounds, key)


#: Either strategy, behaviorally: a ``shard_for(key) -> int`` over
#: paths and :func:`page_key` strings alike.
Partitioner = Callable[[str], int]


def plan_range_split(paths: Sequence[str], shard_count: int) -> Tuple[str, ...]:
    """Boundary paths that split ``paths`` into even contiguous runs.

    Planning input, not a trust anchor: a bad split only unbalances the
    fleet.  Duplicate boundaries from heavily skewed inputs are
    collapsed by nudging, so the result is always valid for
    :class:`RangePartitioner` — possibly leaving trailing shards
    empty when there are fewer distinct paths than shards.
    """
    if shard_count < 1:
        raise FleetError("a fleet needs at least one shard")
    distinct = sorted(set(paths))
    bounds: List[str] = []
    for i in range(1, shard_count):
        index = (i * len(distinct)) // shard_count
        candidate = distinct[index] if index < len(distinct) else None
        if candidate is None or (bounds and candidate <= bounds[-1]):
            # Skewed or exhausted input: nudge past the previous bound
            # to keep the sequence strictly increasing.
            candidate = (bounds[-1] if bounds else "") + "\x00"
        bounds.append(candidate)
    return tuple(bounds)


@dataclass(frozen=True)
class ShardDesc:
    """One shard's endpoints: the primary plus zero or more replicas."""

    shard_id: int
    primary: Endpoint
    replicas: Tuple[Endpoint, ...] = ()


@dataclass(frozen=True)
class ShardMap:
    """The versioned fleet description served over ``REQ_SHARD_MAP``."""

    version: int
    strategy: str
    shards: Tuple[ShardDesc, ...]
    bounds: Tuple[str, ...] = ()

    def partitioner(self) -> Partitioner:
        """The ``key -> shard_id`` function this map describes."""
        return make_partitioner(
            self.strategy, len(self.shards), self.bounds
        )

    # ------------------------------------------------------------------
    # Wire encoding (self-contained; the rpc codec wraps it in a blob)
    # ------------------------------------------------------------------

    def encode(self) -> bytes:
        buf = io.BytesIO()
        if self.strategy not in _STRATEGY_TAGS:
            raise WireFormatError(
                f"unknown partition strategy {self.strategy!r}"
            )
        buf.write(struct.pack(">QB", self.version,
                              _STRATEGY_TAGS[self.strategy]))
        buf.write(struct.pack(">I", len(self.shards)))
        for shard in self.shards:
            buf.write(struct.pack(">I", shard.shard_id))
            _write_endpoint(buf, shard.primary)
            buf.write(struct.pack(">I", len(shard.replicas)))
            for replica in shard.replicas:
                _write_endpoint(buf, replica)
        buf.write(struct.pack(">I", len(self.bounds)))
        for bound in self.bounds:
            _write_str(buf, bound)
        return buf.getvalue()

    @classmethod
    # repro: taint-source
    def decode(cls, data: bytes) -> "ShardMap":
        buf = io.BytesIO(data)
        version, tag = struct.unpack(">QB", _read_exact(buf, 9))
        strategy = _TAG_STRATEGIES.get(tag)
        if strategy is None:
            raise WireFormatError(f"unknown strategy tag {tag}")
        (n_shards,) = struct.unpack(">I", _read_exact(buf, 4))
        if n_shards > _MAX_SHARDS:
            raise WireFormatError(
                f"shard map claims {n_shards} shards (bound exceeded)"
            )
        shards: List[ShardDesc] = []
        for _ in range(n_shards):
            (shard_id,) = struct.unpack(">I", _read_exact(buf, 4))
            primary = _read_endpoint(buf)
            (n_replicas,) = struct.unpack(">I", _read_exact(buf, 4))
            if n_replicas > _MAX_REPLICAS:
                raise WireFormatError(
                    f"shard lists {n_replicas} replicas (bound exceeded)"
                )
            replicas = tuple(
                _read_endpoint(buf) for _ in range(n_replicas)
            )
            shards.append(ShardDesc(shard_id, primary, replicas))
        (n_bounds,) = struct.unpack(">I", _read_exact(buf, 4))
        if n_bounds > _MAX_SHARDS:
            raise WireFormatError(
                f"shard map claims {n_bounds} bounds (bound exceeded)"
            )
        bounds = tuple(_read_str(buf) for _ in range(n_bounds))
        if buf.read(1):
            raise WireFormatError(
                "trailing bytes after shard-map encoding"
            )
        return cls(version=version, strategy=strategy,
                   shards=tuple(shards), bounds=bounds)


def make_partitioner(
    strategy: str, shard_count: int, bounds: Sequence[str] = ()
) -> Partitioner:
    """Build the ``key -> shard_id`` function for a strategy."""
    if strategy == STRATEGY_HASH:
        return HashPartitioner(shard_count).shard_for
    if strategy == STRATEGY_RANGE:
        return RangePartitioner(shard_count, bounds).shard_for
    raise FleetError(f"unknown partition strategy {strategy!r}")


def _read_exact(buf: io.BytesIO, count: int) -> bytes:
    data = buf.read(count)
    if len(data) != count:
        raise WireFormatError("truncated shard-map encoding")
    return data


def _write_str(buf: io.BytesIO, text: str) -> None:
    raw = text.encode("utf-8")
    if len(raw) > _MAX_TEXT_BYTES:
        raise WireFormatError(
            f"string of {len(raw)} bytes exceeds bound"
        )
    buf.write(struct.pack(">H", len(raw)))
    buf.write(raw)


def _read_str(buf: io.BytesIO) -> str:
    (length,) = struct.unpack(">H", _read_exact(buf, 2))
    try:
        return _read_exact(buf, length).decode("utf-8")
    except UnicodeDecodeError as error:
        raise WireFormatError(
            f"invalid UTF-8 in shard-map encoding: {error}"
        )


def _write_endpoint(buf: io.BytesIO, endpoint: Endpoint) -> None:
    host, port = endpoint
    _write_str(buf, host)
    if not 0 <= port <= 0xFFFF:
        raise WireFormatError(f"port {port} out of range")
    buf.write(struct.pack(">H", port))


def _read_endpoint(buf: io.BytesIO) -> Endpoint:
    host = _read_str(buf)
    (port,) = struct.unpack(">H", _read_exact(buf, 2))
    return host, port


__all__ = [
    "STRATEGY_HASH",
    "STRATEGY_RANGE",
    "Endpoint",
    "HashPartitioner",
    "RangePartitioner",
    "Partitioner",
    "ShardDesc",
    "ShardMap",
    "make_partitioner",
    "page_key",
    "plan_range_split",
]
