"""Fleet orchestration: N shards + replicas + one router, as processes.

:class:`Fleet` turns a running single-node
:class:`~repro.core.system.V2FSSystem` into a sharded deployment:

1. plan the partition (hash, or range over the current file set);
2. build each shard primary and replay the system's maintenance
   history into it (every shard reproduces the certified root, storing
   only its own pages — see :mod:`repro.fleet.shard`);
3. seed each shard's replicas through its replication log;
4. serve every primary and replica behind its own
   :class:`~repro.rpc.server.RpcIspServer`, publish the bound ports as
   a :class:`~repro.fleet.partition.ShardMap`, and front the fleet
   with a :class:`~repro.fleet.router.FleetRouterServer`;
5. rewire ``system.isp`` to the router's
   :class:`~repro.fleet.router.FleetIsp`, so ``advance_block`` fans
   each new batch to every primary and ships deltas to replicas.

Chaos hooks: :meth:`Fleet.kill_shard` stops a primary's server
mid-fleet (clients see connection failures; the circuit breaker turns
repeats into fast failures) and :meth:`Fleet.restart_shard` rebinds
the same port.  The ``fleet.shard.crash`` failpoint does the kill at
sync fan-out time, modelling a primary dying mid-update — the fleet
refuses to ack the version until the shard is back and the retry
completes the stragglers.
"""

from __future__ import annotations

import logging
import socket
import time
from typing import Dict, List, Optional, Tuple

from repro.core.certificate import V2fsCertificate
from repro.errors import FleetError
from repro.faults import registry as faults
from repro.faults.registry import InjectedFault
from repro.fleet.health import HealthTracker
from repro.fleet.partition import (
    STRATEGY_HASH,
    STRATEGY_RANGE,
    Endpoint,
    ShardDesc,
    ShardMap,
    make_partitioner,
    plan_range_split,
)
from repro.fleet.replication import ReplicaIsp, ReplicationLog
from repro.fleet.resilience import ResilienceConfig
from repro.fleet.router import (
    AsyncFleetRouterServer,
    FleetIsp,
    FleetRouterServer,
    HandleFactory,
)
from repro.fleet.shard import ShardIsp
from repro.rpc.server import IspBootstrap, RpcIspServer
from repro.serve.server import AsyncIspServer

logger = logging.getLogger("repro.fleet")


def _tcp_probe(endpoint: Endpoint, timeout_s: float = 0.5):
    """A heartbeat for one endpoint: can we still open a connection?

    Deliberately *not* an RPC through the router's pooled handles — a
    heartbeat must not share circuit-breaker state with the data path,
    or a breaker opened by data-plane timeouts would keep reporting a
    recovered endpoint as dead.
    """

    def probe() -> None:
        with socket.create_connection(endpoint, timeout=timeout_s):
            pass

    return probe


class Fleet:
    """A running sharded deployment over one :class:`V2FSSystem`."""

    def __init__(
        self,
        system,
        shard_count: int = 4,
        replicas: int = 0,
        strategy: str = STRATEGY_HASH,
        host: str = "127.0.0.1",
        service_delay_s: float = 0.0,
        handle_factory: Optional[HandleFactory] = None,
        config: Optional[ResilienceConfig] = None,
        server_class: type = RpcIspServer,
    ) -> None:
        if shard_count < 1:
            raise FleetError("a fleet needs at least one shard")
        #: Server class for every shard and replica endpoint; pass
        #: :class:`~repro.serve.server.AsyncIspServer` to run the whole
        #: fleet on event loops (the router upgrades to
        #: :class:`AsyncFleetRouterServer` to match).
        self.server_class = server_class
        self.system = system
        self.shard_count = shard_count
        self.strategy = strategy
        self.host = host
        self.service_delay_s = service_delay_s
        #: One declarative bundle for every router-to-shard endpoint
        #: handle; an explicit ``handle_factory`` still wins (tests).
        self.config = config or ResilienceConfig()
        self._handle_factory = handle_factory or self.config.make_handle
        self._original_isp = system.isp
        self._started = False
        self.health: Optional[HealthTracker] = None
        self._health_interval_s: Optional[float] = None

        bounds: Tuple[str, ...] = ()
        if strategy == STRATEGY_RANGE:
            source = system.isp.ads
            bounds = plan_range_split(
                source.list_files(system.isp.root), shard_count
            )
        self.bounds = bounds
        self.partitioner = make_partitioner(
            strategy, shard_count, bounds
        )

        self.shards: Dict[int, ShardIsp] = {
            shard_id: ShardIsp(shard_id, self.partitioner)
            for shard_id in range(shard_count)
        }
        #: replicas[shard_id] -> list of (label, ReplicaIsp)
        self.replicas: Dict[int, List[Tuple[str, ReplicaIsp]]] = {
            shard_id: [] for shard_id in range(shard_count)
        }
        for index in range(replicas):
            shard_id = index % shard_count
            label = f"shard{shard_id}-replica{index // shard_count}"
            self.replicas[shard_id].append(
                (label, ReplicaIsp(shard_id, self.partitioner))
            )
        self.logs: Dict[int, ReplicationLog] = {
            shard_id: ReplicationLog(shard_id)
            for shard_id in range(shard_count)
        }

        self._shard_servers: Dict[int, Optional[RpcIspServer]] = {}
        self._shard_ports: Dict[int, int] = {}
        self._replica_servers: Dict[str, RpcIspServer] = {}
        self.router_server: Optional[FleetRouterServer] = None
        self.isp: Optional[FleetIsp] = None

    # ------------------------------------------------------------------
    # Bootstrap
    # ------------------------------------------------------------------

    def _bootstrap(self) -> IspBootstrap:
        system = self.system
        return IspBootstrap(
            report=system.attestation_report,
            attestation_root=system.attestation.root_public_key,
            measurement=system.ci.enclave.measurement,
            chain_heads=lambda: {
                chain_id: chain.latest_header()
                for chain_id, chain in system.chains.items()
                if len(chain)
            },
        )

    def _replay_history(self) -> None:
        """Reproduce the system's maintenance history on every shard.

        Each report re-applies on each shard (owned pages stored,
        foreign pages folded as digests) and must land on the same
        certified root the single-node ISP published — the shard's own
        root check enforces it.  Deltas stream to the replicas through
        the logs, so they finish caught up.
        """
        for shard_id, shard in self.shards.items():
            log = self.logs[shard_id]
            for label, replica in self.replicas[shard_id]:
                log.attach(label, self._make_apply(label, replica))
            for report in self.system.update_reports:
                shard.sync_update(
                    report.writes, report.new_sizes, report.certificate
                )
                log.append(shard.take_delta(), report.certificate)
            log.ship()

    def _make_apply(self, label: str, replica: ReplicaIsp):
        def apply(delta, certificate: V2fsCertificate) -> None:
            server = self._replica_servers.get(label)
            if server is None:
                replica.apply_delta(delta, certificate)
                return
            with server.lock:
                replica.apply_delta(delta, certificate)

        return apply

    def _make_sync(self, shard_id: int):
        """One shard's slice of the router's ``sync_update`` fan-out."""

        def sync(writes, new_sizes, certificate) -> None:
            if faults.ACTIVE:
                try:
                    faults.fire(
                        "fleet.shard.crash",
                        shard=shard_id, version=certificate.version,
                    )
                except InjectedFault:
                    logger.warning(
                        "failpoint fleet.shard.crash: killing shard %d "
                        "at sync fan-out", shard_id,
                    )
                    self.kill_shard(shard_id)
                    raise
            server = self._shard_servers.get(shard_id)
            if server is None:
                raise FleetError(f"shard {shard_id} is down")
            shard = self.shards[shard_id]
            with server.lock:
                shard.sync_update(writes, new_sizes, certificate)
                delta = shard.take_delta()
            log = self.logs[shard_id]
            log.append(delta, certificate)
            log.ship()

        return sync

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "Fleet":
        if self._started:
            raise FleetError("fleet already started")
        self._replay_history()
        bootstrap = self._bootstrap()
        for shard_id, shard in self.shards.items():
            server = self.server_class(shard, self.host, 0)
            server.service_delay_s = self.service_delay_s
            server.start()
            self._shard_servers[shard_id] = server
            self._shard_ports[shard_id] = server.address[1]
        for shard_id, pairs in self.replicas.items():
            for label, replica in pairs:
                server = self.server_class(replica, self.host, 0)
                server.service_delay_s = self.service_delay_s
                server.start()
                self._replica_servers[label] = server
        shard_map = self._current_shard_map()
        self.isp = FleetIsp(
            shard_map,
            handle_factory=self._handle_factory,
            sync_fns={
                shard_id: self._make_sync(shard_id)
                for shard_id in self.shards
            },
            config=self.config,
            health=self.health,
        )
        router_class = (
            AsyncFleetRouterServer
            if issubclass(self.server_class, AsyncIspServer)
            else FleetRouterServer
        )
        self.router_server = router_class(
            self.isp, self.host, 0, bootstrap=bootstrap
        )
        self.router_server.start()
        # From here on, `advance_block` fans out to the fleet.
        self.system.isp = self.isp
        self._started = True
        return self

    @property
    def router_address(self) -> Endpoint:
        if self.router_server is None:
            raise FleetError("fleet is not started")
        return self.router_server.address

    def kill_shard(self, shard_id: int) -> None:
        """Stop one primary's server (its state survives for restart)."""
        server = self._shard_servers.get(shard_id)
        if server is None:
            return
        self._shard_servers[shard_id] = None
        server.stop()
        logger.warning("shard %d killed", shard_id)

    def down_shards(self) -> List[int]:
        """Shard ids whose primary server is currently stopped."""
        return [
            shard_id
            for shard_id, server in sorted(self._shard_servers.items())
            if server is None
        ]

    def restart_shard(self, shard_id: int) -> None:
        """Rebind a killed primary on its original port."""
        if self._shard_servers.get(shard_id) is not None:
            return
        shard = self.shards[shard_id]
        server = self.server_class(
            shard, self.host, self._shard_ports[shard_id]
        )
        server.service_delay_s = self.service_delay_s
        server.start()
        self._shard_servers[shard_id] = server
        logger.warning("shard %d restarted", shard_id)

    # ------------------------------------------------------------------
    # Failure domains: health tracking and replica promotion
    # ------------------------------------------------------------------

    def watch_health(
        self,
        miss_threshold: int = 2,
        auto_promote: bool = False,
        interval_s: Optional[float] = None,
    ) -> HealthTracker:
        """Attach a :class:`HealthTracker` over every fleet endpoint.

        The router starts skipping replicas declared down; with
        ``auto_promote`` a primary's up→down transition triggers
        :meth:`promote_replica` for its shard.  ``interval_s`` starts
        the background heartbeat loop; leave it ``None`` to drive the
        tracker by explicit ``probe_once()`` ticks (chaos schedules do,
        for deterministic heartbeat timing).

        With a background interval the probes are *traffic-aware*: an
        endpoint whose data-path handle answered a real RPC within the
        last interval is alive by construction and is not probed — the
        TCP connect is reserved for quiet endpoints, where it is the
        only liveness signal.  Manual-tick trackers always probe
        (chaos schedules want every tick observable).
        """
        if self.isp is None:
            raise FleetError("fleet is not started")
        on_down = self._auto_promote if auto_promote else None
        tracker = HealthTracker(
            miss_threshold=miss_threshold, on_down=on_down
        )
        self.health = tracker
        self.isp.health = tracker
        self._health_interval_s = interval_s
        self._sync_health()
        if interval_s is not None:
            tracker.start(interval_s)
        return tracker

    def _endpoint_roles(self) -> Dict[str, Tuple[str, int]]:
        """Current ``"host:port" -> (role, shard_id)`` membership."""
        roles: Dict[str, Tuple[str, int]] = {}
        for shard_id, port in self._shard_ports.items():
            roles[f"{self.host}:{port}"] = ("primary", shard_id)
        for shard_id, pairs in self.replicas.items():
            for label, _ in pairs:
                server = self._replica_servers.get(label)
                if server is None:
                    continue
                host, port = server.address
                roles[f"{host}:{port}"] = ("replica", shard_id)
        return roles

    def _sync_health(self) -> None:
        """Reconcile tracker membership with the current topology."""
        tracker = self.health
        if tracker is None:
            return
        roles = self._endpoint_roles()
        with tracker._lock:
            known = list(tracker._probes)
        for key in known:
            if key not in roles:
                tracker.detach(key)
        for key in roles:
            host, port_text = key.rsplit(":", 1)
            endpoint = (host, int(port_text))
            if self._health_interval_s:
                probe = self._traffic_probe(key, endpoint)
            else:
                probe = _tcp_probe(endpoint)
            tracker.attach(key, probe)

    def _traffic_probe(self, key: str, endpoint: Endpoint):
        """A heartbeat that lets data-path traffic speak first.

        A successful RPC within the probe interval proves the endpoint
        alive with real work; an active connect would only steal
        cycles from the requests it is busy serving (on a small host
        the accept alone preempts the server).  Only a quiet endpoint
        gets the TCP probe — there, it is the only liveness signal.
        """
        tcp = _tcp_probe(endpoint)
        freshness_s = self._health_interval_s

        def probe() -> None:
            isp = self.isp
            handle = isp.handle_for(key) if isp is not None else None
            last_ok = getattr(handle, "last_ok_monotonic", None)
            if (
                last_ok is not None
                and time.monotonic() - last_ok < freshness_s
            ):
                return
            tcp()

        return probe

    def _auto_promote(self, key: str) -> None:
        role_shard = self._endpoint_roles().get(key)
        if role_shard is None or role_shard[0] != "primary":
            return
        shard_id = role_shard[1]
        try:
            self.promote_replica(shard_id)
        except FleetError as error:
            logger.warning(
                "auto-promotion for shard %d failed: %s",
                shard_id, error,
            )

    def promote_replica(
        self, shard_id: int, label: Optional[str] = None
    ) -> str:
        """Fail a shard over to one of its caught-up replicas.

        Picks ``label`` (or the first replica that accepts — each one
        certificate-gates itself, see
        :meth:`~repro.fleet.replication.ReplicaIsp.promote`), rewires
        the shard's server/log/sync plumbing around it, and installs a
        version-bumped :class:`ShardMap` on the router — bumping the
        routing *epoch*, so fleet sessions opened against the old
        topology abort typed instead of stitching across the failover.
        Returns the promoted replica's label.
        """
        if self.isp is None:
            raise FleetError("fleet is not started")
        pairs = self.replicas.get(shard_id, [])
        if not pairs:
            raise FleetError(
                f"shard {shard_id} has no replica to promote"
            )
        # The fleet-wide certified version gates promotion; the router
        # can still serve it when this shard's primary is the casualty
        # (any member's copy is signature-checked by callers anyway).
        expected_version = self.isp.get_certificate().version
        chosen: Optional[Tuple[str, ReplicaIsp]] = None
        refusals: List[str] = []
        for candidate_label, replica in pairs:
            if label is not None and candidate_label != label:
                continue
            try:
                replica.promote(expected_version)
            except FleetError as error:
                refusals.append(str(error))
                continue
            chosen = (candidate_label, replica)
            break
        if chosen is None:
            raise FleetError(
                f"no replica of shard {shard_id} accepted promotion: "
                + ("; ".join(refusals) or f"label {label!r} not found")
            )
        new_label, new_primary = chosen
        # Retire the old primary (its server may already be dead).
        self.kill_shard(shard_id)
        server = self._replica_servers.pop(new_label)
        log = self.logs[shard_id]
        log.detach(new_label)
        self.replicas[shard_id] = [
            pair for pair in pairs if pair[0] != new_label
        ]
        self.shards[shard_id] = new_primary  # _make_sync resolves late
        self._shard_servers[shard_id] = server
        self._shard_ports[shard_id] = server.address[1]
        logger.warning(
            "shard %d failed over to %s at %s:%d",
            shard_id, new_label, server.address[0], server.address[1],
        )
        self._sync_health()
        self.isp.adopt_shard_map(self._current_shard_map())
        return new_label

    def _current_shard_map(self) -> ShardMap:
        version = 1 if self.isp is None else self.isp.shard_map.version + 1
        return ShardMap(
            version=version,
            strategy=self.strategy,
            shards=tuple(
                ShardDesc(
                    shard_id=shard_id,
                    primary=(self.host, self._shard_ports[shard_id]),
                    replicas=tuple(
                        self._replica_servers[label].address
                        for label, _ in self.replicas[shard_id]
                    ),
                )
                for shard_id in sorted(self.shards)
            ),
            bounds=self.bounds,
        )

    def stop(self) -> None:
        if self.health is not None:
            self.health.stop()
            self.health = None
        if self.router_server is not None:
            self.router_server.stop()
            self.router_server = None
        if self.isp is not None:
            self.isp.close()
            self.isp = None
        for shard_id, server in list(self._shard_servers.items()):
            if server is not None:
                server.stop()
            self._shard_servers[shard_id] = None
        for server in self._replica_servers.values():
            server.stop()
        self._replica_servers.clear()
        self.system.isp = self._original_isp
        self._started = False

    def __enter__(self) -> "Fleet":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


__all__ = ["Fleet"]
