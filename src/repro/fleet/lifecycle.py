"""Fleet orchestration: N shards + replicas + one router, as processes.

:class:`Fleet` turns a running single-node
:class:`~repro.core.system.V2FSSystem` into a sharded deployment:

1. plan the partition (hash, or range over the current file set);
2. build each shard primary and replay the system's maintenance
   history into it (every shard reproduces the certified root, storing
   only its own pages — see :mod:`repro.fleet.shard`);
3. seed each shard's replicas through its replication log;
4. serve every primary and replica behind its own
   :class:`~repro.rpc.server.RpcIspServer`, publish the bound ports as
   a :class:`~repro.fleet.partition.ShardMap`, and front the fleet
   with a :class:`~repro.fleet.router.FleetRouterServer`;
5. rewire ``system.isp`` to the router's
   :class:`~repro.fleet.router.FleetIsp`, so ``advance_block`` fans
   each new batch to every primary and ships deltas to replicas.

Chaos hooks: :meth:`Fleet.kill_shard` stops a primary's server
mid-fleet (clients see connection failures; the circuit breaker turns
repeats into fast failures) and :meth:`Fleet.restart_shard` rebinds
the same port.  The ``fleet.shard.crash`` failpoint does the kill at
sync fan-out time, modelling a primary dying mid-update — the fleet
refuses to ack the version until the shard is back and the retry
completes the stragglers.
"""

from __future__ import annotations

import logging
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.certificate import V2fsCertificate
from repro.errors import FleetError
from repro.faults import registry as faults
from repro.faults.registry import InjectedFault
from repro.fleet.partition import (
    STRATEGY_HASH,
    STRATEGY_RANGE,
    Endpoint,
    ShardDesc,
    ShardMap,
    make_partitioner,
    plan_range_split,
)
from repro.fleet.replication import ReplicaIsp, ReplicationLog
from repro.fleet.router import FleetIsp, FleetRouterServer, HandleFactory
from repro.fleet.shard import ShardIsp
from repro.rpc.client import RemoteIsp
from repro.rpc.server import IspBootstrap, RpcIspServer

logger = logging.getLogger("repro.fleet")


def _fleet_handle(endpoint: Endpoint) -> RemoteIsp:
    # Router-to-shard hops get a tighter budget than a WAN client: the
    # shards are co-located, and a dead one should surface quickly.
    return RemoteIsp(
        endpoint[0], endpoint[1],
        timeout_s=5.0, max_retries=2, backoff_s=0.05,
    )


class Fleet:
    """A running sharded deployment over one :class:`V2FSSystem`."""

    def __init__(
        self,
        system,
        shard_count: int = 4,
        replicas: int = 0,
        strategy: str = STRATEGY_HASH,
        host: str = "127.0.0.1",
        service_delay_s: float = 0.0,
        handle_factory: Optional[HandleFactory] = None,
    ) -> None:
        if shard_count < 1:
            raise FleetError("a fleet needs at least one shard")
        self.system = system
        self.shard_count = shard_count
        self.strategy = strategy
        self.host = host
        self.service_delay_s = service_delay_s
        self._handle_factory = handle_factory or _fleet_handle
        self._original_isp = system.isp
        self._started = False

        bounds: Tuple[str, ...] = ()
        if strategy == STRATEGY_RANGE:
            source = system.isp.ads
            bounds = plan_range_split(
                source.list_files(system.isp.root), shard_count
            )
        self.bounds = bounds
        self.partitioner = make_partitioner(
            strategy, shard_count, bounds
        )

        self.shards: Dict[int, ShardIsp] = {
            shard_id: ShardIsp(shard_id, self.partitioner)
            for shard_id in range(shard_count)
        }
        #: replicas[shard_id] -> list of (label, ReplicaIsp)
        self.replicas: Dict[int, List[Tuple[str, ReplicaIsp]]] = {
            shard_id: [] for shard_id in range(shard_count)
        }
        for index in range(replicas):
            shard_id = index % shard_count
            label = f"shard{shard_id}-replica{index // shard_count}"
            self.replicas[shard_id].append(
                (label, ReplicaIsp(shard_id, self.partitioner))
            )
        self.logs: Dict[int, ReplicationLog] = {
            shard_id: ReplicationLog(shard_id)
            for shard_id in range(shard_count)
        }

        self._shard_servers: Dict[int, Optional[RpcIspServer]] = {}
        self._shard_ports: Dict[int, int] = {}
        self._replica_servers: Dict[str, RpcIspServer] = {}
        self.router_server: Optional[FleetRouterServer] = None
        self.isp: Optional[FleetIsp] = None

    # ------------------------------------------------------------------
    # Bootstrap
    # ------------------------------------------------------------------

    def _bootstrap(self) -> IspBootstrap:
        system = self.system
        return IspBootstrap(
            report=system.attestation_report,
            attestation_root=system.attestation.root_public_key,
            measurement=system.ci.enclave.measurement,
            chain_heads=lambda: {
                chain_id: chain.latest_header()
                for chain_id, chain in system.chains.items()
                if len(chain)
            },
        )

    def _replay_history(self) -> None:
        """Reproduce the system's maintenance history on every shard.

        Each report re-applies on each shard (owned pages stored,
        foreign pages folded as digests) and must land on the same
        certified root the single-node ISP published — the shard's own
        root check enforces it.  Deltas stream to the replicas through
        the logs, so they finish caught up.
        """
        for shard_id, shard in self.shards.items():
            log = self.logs[shard_id]
            for label, replica in self.replicas[shard_id]:
                log.attach(label, self._make_apply(label, replica))
            for report in self.system.update_reports:
                shard.sync_update(
                    report.writes, report.new_sizes, report.certificate
                )
                log.append(shard.take_delta(), report.certificate)
            log.ship()

    def _make_apply(self, label: str, replica: ReplicaIsp):
        def apply(delta, certificate: V2fsCertificate) -> None:
            server = self._replica_servers.get(label)
            if server is None:
                replica.apply_delta(delta, certificate)
                return
            with server.lock:
                replica.apply_delta(delta, certificate)

        return apply

    def _make_sync(self, shard_id: int):
        """One shard's slice of the router's ``sync_update`` fan-out."""

        def sync(writes, new_sizes, certificate) -> None:
            if faults.ACTIVE:
                try:
                    faults.fire(
                        "fleet.shard.crash",
                        shard=shard_id, version=certificate.version,
                    )
                except InjectedFault:
                    logger.warning(
                        "failpoint fleet.shard.crash: killing shard %d "
                        "at sync fan-out", shard_id,
                    )
                    self.kill_shard(shard_id)
                    raise
            server = self._shard_servers.get(shard_id)
            if server is None:
                raise FleetError(f"shard {shard_id} is down")
            shard = self.shards[shard_id]
            with server.lock:
                shard.sync_update(writes, new_sizes, certificate)
                delta = shard.take_delta()
            log = self.logs[shard_id]
            log.append(delta, certificate)
            log.ship()

        return sync

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "Fleet":
        if self._started:
            raise FleetError("fleet already started")
        self._replay_history()
        bootstrap = self._bootstrap()
        for shard_id, shard in self.shards.items():
            server = RpcIspServer(shard, self.host, 0)
            server.service_delay_s = self.service_delay_s
            server.start()
            self._shard_servers[shard_id] = server
            self._shard_ports[shard_id] = server.address[1]
        for shard_id, pairs in self.replicas.items():
            for label, replica in pairs:
                server = RpcIspServer(replica, self.host, 0)
                server.service_delay_s = self.service_delay_s
                server.start()
                self._replica_servers[label] = server
        shard_map = ShardMap(
            version=1,
            strategy=self.strategy,
            shards=tuple(
                ShardDesc(
                    shard_id=shard_id,
                    primary=(self.host, self._shard_ports[shard_id]),
                    replicas=tuple(
                        self._replica_servers[label].address
                        for label, _ in self.replicas[shard_id]
                    ),
                )
                for shard_id in sorted(self.shards)
            ),
            bounds=self.bounds,
        )
        self.isp = FleetIsp(
            shard_map,
            handle_factory=self._handle_factory,
            sync_fns={
                shard_id: self._make_sync(shard_id)
                for shard_id in self.shards
            },
        )
        self.router_server = FleetRouterServer(
            self.isp, self.host, 0, bootstrap=bootstrap
        )
        self.router_server.start()
        # From here on, `advance_block` fans out to the fleet.
        self.system.isp = self.isp
        self._started = True
        return self

    @property
    def router_address(self) -> Endpoint:
        if self.router_server is None:
            raise FleetError("fleet is not started")
        return self.router_server.address

    def kill_shard(self, shard_id: int) -> None:
        """Stop one primary's server (its state survives for restart)."""
        server = self._shard_servers.get(shard_id)
        if server is None:
            return
        self._shard_servers[shard_id] = None
        server.stop()
        logger.warning("shard %d killed", shard_id)

    def down_shards(self) -> List[int]:
        """Shard ids whose primary server is currently stopped."""
        return [
            shard_id
            for shard_id, server in sorted(self._shard_servers.items())
            if server is None
        ]

    def restart_shard(self, shard_id: int) -> None:
        """Rebind a killed primary on its original port."""
        if self._shard_servers.get(shard_id) is not None:
            return
        shard = self.shards[shard_id]
        server = RpcIspServer(
            shard, self.host, self._shard_ports[shard_id]
        )
        server.service_delay_s = self.service_delay_s
        server.start()
        self._shard_servers[shard_id] = server
        logger.warning("shard %d restarted", shard_id)

    def stop(self) -> None:
        if self.router_server is not None:
            self.router_server.stop()
            self.router_server = None
        if self.isp is not None:
            self.isp.close()
            self.isp = None
        for shard_id, server in list(self._shard_servers.items()):
            if server is not None:
                server.stop()
            self._shard_servers[shard_id] = None
        for server in self._replica_servers.values():
            server.stop()
        self._replica_servers.clear()
        self.system.isp = self._original_isp
        self._started = False

    def __enter__(self) -> "Fleet":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


__all__ = ["Fleet"]
