"""A shard primary: one partition's pages, the whole tree's digests.

The trick that makes sharding invisible to the verifier: a shard
applies every ``sync_update`` batch over the *full* path space, but for
pages outside its partition it folds in page **digests** only
(:meth:`~repro.merkle.ads.V2fsAds.apply_writes` with an ``own``
predicate).  Digests commit to content, so the shard's root after every
batch is byte-identical to the fleet-wide certified root — the shard
can pin sessions to it, build consolidated VOs against it, and answer
freshness checks for any path, while storing page bytes for roughly
``1/N`` of the data.

Ownership is decided per ``(path, page_id)`` via
:func:`~repro.fleet.partition.page_key`: under the hash strategy a hot
table file spreads its pages across the whole fleet; under the range
strategy a file's pages stay together because page keys sort right
after their path.

Reads of pages the shard does not own fail with a typed
:class:`~repro.errors.FleetError` (a routing mistake, surfaced
immediately), never wrong data.  Each applied batch is also captured as
a :class:`~repro.merkle.delta.NodeDelta` via the recording store, which
the lifecycle feeds to this shard's replication log.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.crypto.hashing import Digest
from repro.errors import FleetError
from repro.fleet.partition import Partitioner, page_key
from repro.isp.server import IspServer
from repro.merkle.ads import V2fsAds
from repro.merkle.delta import NodeDelta, RecordingNodeStore


class ShardIsp(IspServer):
    """An :class:`IspServer` owning one partition of the path space."""

    def __init__(self, shard_id: int, partitioner: Partitioner) -> None:
        super().__init__()
        self.shard_id = shard_id
        self.partitioner = partitioner
        # Replace the stock store with a recording one so every sync's
        # new nodes can be drained into a replication delta.  The empty
        # root is deterministic, so re-deriving it is safe.
        self.ads = V2fsAds(RecordingNodeStore())
        self.root = self.ads.root

    def owns(self, path: str, page_id: int) -> bool:
        return self.partitioner(page_key(path, page_id)) == self.shard_id

    def _apply_writes(
        self,
        writes: Mapping[str, Mapping[int, bytes]],
        new_sizes: Mapping[str, int],
    ) -> Digest:
        return self.ads.apply_writes(
            self.root, writes, new_sizes, own=self.owns
        )

    def take_delta(self) -> NodeDelta:
        """Drain the nodes the last sync introduced (replication feed).

        The delta carries this shard's partial view — skeleton digests
        plus owned pages — which is exactly what this shard's replicas
        need to serve the same reads.
        """
        store = self.ads.store
        assert isinstance(store, RecordingNodeStore)
        certificate = self.get_certificate()
        return store.take_delta(certificate.version, self.root)

    # ------------------------------------------------------------------
    # Ownership guards: misroutes fail typed and fast
    # ------------------------------------------------------------------
    # ``get_file_meta``, ``validate_path`` freshness answers, and VO
    # construction only touch the digest skeleton, which every shard
    # holds in full — no guard needed there.  Page *content* service is
    # partition-local.

    def get_page(self, session_id: int, path: str, page_id: int) -> bytes:
        if not self.owns(path, page_id):
            raise FleetError(
                f"shard {self.shard_id} does not own "
                f"{path} page {page_id}"
            )
        return super().get_page(session_id, path, page_id)

    def validate_path(self, session_id, path, page_id, digs_path):
        # The fresh-ancestor answer is skeleton-only, but the fallback
        # returns page bytes; guard up front so a misrouted check never
        # half-runs.
        if not self.owns(path, page_id):
            raise FleetError(
                f"shard {self.shard_id} does not own "
                f"{path} page {page_id}"
            )
        return super().validate_path(session_id, path, page_id, digs_path)


#: Convenience: build the ``shard_id -> ShardIsp`` set for a fleet.
def make_shards(
    shard_count: int, partitioner: Partitioner
) -> Dict[int, ShardIsp]:
    return {
        shard_id: ShardIsp(shard_id, partitioner)
        for shard_id in range(shard_count)
    }


__all__ = ["ShardIsp", "make_shards"]
