"""Plain, unauthenticated page-oriented byte store.

Backs :class:`~repro.vfs.local.LocalFilesystem`.  Files are growable byte
arrays; there is no integrity machinery here — this models an ordinary
local disk, which is exactly what the paper's unverified SQLite baseline
and the client's temporary-file area need.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import FileNotFoundInStoreError


class PlainPageStore:
    """A dictionary of growable byte buffers keyed by absolute path."""

    def __init__(self) -> None:
        self._files: Dict[str, bytearray] = {}

    def create(self, path: str) -> None:
        if path not in self._files:
            self._files[path] = bytearray()

    def exists(self, path: str) -> bool:
        return path in self._files

    def remove(self, path: str) -> None:
        try:
            del self._files[path]
        except KeyError:
            raise FileNotFoundInStoreError(path) from None

    def list_files(self) -> List[str]:
        return sorted(self._files)

    def size(self, path: str) -> int:
        return len(self._buffer(path))

    def read_at(self, path: str, offset: int, count: int) -> bytes:
        buf = self._buffer(path)
        return bytes(buf[offset:offset + count])

    def write_at(self, path: str, offset: int, data: bytes) -> None:
        buf = self._buffer(path)
        end = offset + len(data)
        if end > len(buf):
            buf.extend(b"\x00" * (end - len(buf)))
        buf[offset:end] = data

    def _buffer(self, path: str) -> bytearray:
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFoundInStoreError(path) from None
