"""The extended POSIX I/O interface of V2FS.

The paper's key idea is that a database engine only needs ``open``,
``seek``, ``read``, ``write``, and ``close`` to run — so any storage that
speaks this interface can host an off-the-shelf engine.  The abstract
classes here define that contract; the database engine in :mod:`repro.db`
is written exclusively against them.

Files are sequences of fixed-size pages (:data:`PAGE_SIZE` = 4096 bytes,
SQLite's default, as in the paper); byte-granular reads and writes are
supported and are translated into page accesses by each implementation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List

from repro.errors import StorageError
from repro.obs import metrics as obs

#: Fixed page size, matching SQLite's default as used in the paper.
PAGE_SIZE = 4096

SEEK_SET = 0
SEEK_CUR = 1
SEEK_END = 2


class VirtualFile(ABC):
    """An open file handle with a cursor (the paper's ``fd``)."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.offset = 0
        self.closed = False

    def _check_open(self) -> None:
        if self.closed:
            raise StorageError(f"I/O on closed file {self.path}")

    def seek(self, offset: int, whence: int = SEEK_SET) -> int:
        """Move the cursor; returns the new absolute offset."""
        self._check_open()
        if whence == SEEK_SET:
            new = offset
        elif whence == SEEK_CUR:
            new = self.offset + offset
        elif whence == SEEK_END:
            new = self.size() + offset
        else:
            raise StorageError(f"bad whence {whence}")
        if new < 0:
            raise StorageError("negative seek offset")
        self.offset = new
        return new

    def tell(self) -> int:
        return self.offset

    @abstractmethod
    def size(self) -> int:
        """Current size of the file in bytes."""

    @abstractmethod
    def read(self, count: int) -> bytes:
        """Read up to ``count`` bytes at the cursor; advances the cursor.

        Returns fewer bytes only at end of file.
        """

    @abstractmethod
    def write(self, data: bytes) -> int:
        """Write ``data`` at the cursor; advances the cursor.

        Returns the number of bytes written (always ``len(data)``).
        """

    def sync(self) -> None:
        """Force written data to durable storage (``fsync``).

        The default is a no-op: purely in-memory backends have no
        dirty/durable distinction.  Backends that model or provide real
        durability (:class:`repro.faults.shadowfs.ShadowFile`, real-disk
        files) override this; the pager calls it from ``flush``/``close``
        so a simulated crash cannot abandon pages the engine believes
        are persistent.
        """
        self._check_open()

    @abstractmethod
    def close(self) -> None:
        """Release the handle."""

    def __enter__(self) -> "VirtualFile":
        return self

    def __exit__(self, *exc) -> None:
        if not self.closed:
            self.close()

    # -- page-level convenience used by the pager --------------------

    def read_page(self, page_id: int) -> bytes:
        """Read one full page (zero-padded at EOF)."""
        if obs.ACTIVE:
            obs.inc("vfs.read_page")
        self.seek(page_id * PAGE_SIZE)
        data = self.read(PAGE_SIZE)
        if len(data) < PAGE_SIZE:
            data = data + b"\x00" * (PAGE_SIZE - len(data))
        return data

    def write_page(self, page_id: int, data: bytes) -> None:
        """Write one full page."""
        if obs.ACTIVE:
            obs.inc("vfs.write_page")
        if len(data) != PAGE_SIZE:
            raise StorageError(
                f"write_page requires exactly {PAGE_SIZE} bytes"
            )
        self.seek(page_id * PAGE_SIZE)
        self.write(data)


class VirtualFilesystem(ABC):
    """Factory for file handles plus namespace operations."""

    #: True when pages read through this filesystem are already
    #: authenticated end-to-end by an external mechanism (e.g. Merkle
    #: proofs against a certified root).  The pager then skips its
    #: torn-write checksum on reads, so tampering surfaces through the
    #: authenticating layer's own error taxonomy rather than as a
    #: local storage fault.
    authenticates_pages = False

    @abstractmethod
    def open(self, path: str, create: bool = False) -> VirtualFile:
        """Open ``path``; with ``create`` the file is created if absent."""

    @abstractmethod
    def exists(self, path: str) -> bool:
        """Return True iff ``path`` names an existing file."""

    @abstractmethod
    def remove(self, path: str) -> None:
        """Delete the file at ``path``."""

    @abstractmethod
    def list_files(self) -> List[str]:
        """Return all file paths, sorted."""

    def read_all(self, path: str) -> bytes:
        """Convenience: the full contents of ``path``."""
        with self.open(path) as handle:
            return handle.read(handle.size())

    def write_all(self, path: str, data: bytes) -> None:
        """Convenience: replace the contents of ``path``."""
        with self.open(path, create=True) as handle:
            handle.write(data)
