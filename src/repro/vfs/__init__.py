"""V2FS: the verifiable virtual filesystem.

This package defines the POSIX-style I/O boundary between the database
engine and storage (Section IV-A of the paper) and its three realizations:

* :mod:`repro.vfs.local` — a direct, unverified filesystem (used by the
  ISP's storage layer and by the ordinary-database baseline);
* :mod:`repro.vfs.maintenance` — the V2FS CI side (Algorithms 1-3): the
  enclave-resident interface with the P_r/P_w page collections, OCalls to
  outside-enclave storage, and certificate construction;
* :mod:`repro.vfs.client` — the query-client side (Algorithms 4-6):
  fetches pages from the ISP on demand, records digests for deferred
  verification, and keeps temporary files local.
"""

from repro.vfs.interface import (
    PAGE_SIZE,
    SEEK_CUR,
    SEEK_END,
    SEEK_SET,
    VirtualFile,
    VirtualFilesystem,
)
from repro.vfs.local import LocalFilesystem
from repro.vfs.pagestore import PlainPageStore

__all__ = [
    "PAGE_SIZE",
    "SEEK_CUR",
    "SEEK_END",
    "SEEK_SET",
    "LocalFilesystem",
    "PlainPageStore",
    "VirtualFile",
    "VirtualFilesystem",
]
