"""Direct, unverified filesystem over a :class:`PlainPageStore`.

This is the baseline storage backend: the database engine running on a
:class:`LocalFilesystem` behaves like ordinary SQLite on local disk, with
no verification and no network.  The ISP also keeps its working copy of
the database on one of these (its authenticated view lives in the ADS).
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import FileNotFoundInStoreError
from repro.vfs.interface import VirtualFile, VirtualFilesystem
from repro.vfs.pagestore import PlainPageStore


class LocalFile(VirtualFile):
    """Handle over a byte buffer in a :class:`PlainPageStore`."""

    def __init__(self, store: PlainPageStore, path: str) -> None:
        super().__init__(path)
        self._store = store

    def size(self) -> int:
        self._check_open()
        return self._store.size(self.path)

    def read(self, count: int) -> bytes:
        self._check_open()
        data = self._store.read_at(self.path, self.offset, count)
        self.offset += len(data)
        return data

    def write(self, data: bytes) -> int:
        self._check_open()
        self._store.write_at(self.path, self.offset, data)
        self.offset += len(data)
        return len(data)

    def close(self) -> None:
        self.closed = True


class LocalFilesystem(VirtualFilesystem):
    """Unverified filesystem; optionally shares a caller-provided store."""

    def __init__(self, store: Optional[PlainPageStore] = None) -> None:
        self.store = store if store is not None else PlainPageStore()

    def open(self, path: str, create: bool = False) -> LocalFile:
        if not self.store.exists(path):
            if not create:
                raise FileNotFoundInStoreError(path)
            self.store.create(path)
        return LocalFile(self.store, path)

    def exists(self, path: str) -> bool:
        return self.store.exists(path)

    def remove(self, path: str) -> None:
        self.store.remove(path)

    def list_files(self) -> List[str]:
        return self.store.list_files()
