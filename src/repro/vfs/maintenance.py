"""CI-side maintenance VFS — the enclave half of Algorithms 1-3.

A :class:`MaintenanceSession` is created per block update.  The database
engine runs "inside the enclave" against this filesystem; every page miss
crosses the enclave boundary through a metered OCall, and the two page
collections ``P_r`` / ``P_w`` (Section IV-B) absorb repeated accesses so
boundary crossings stay proportional to *distinct* pages, not to I/O
operations.  After the engine finishes, the CI:

1. asks the outside-enclave storage for ``pi_r`` and ``pi_w``;
2. verifies both against the previous ADS root *inside* the enclave;
3. recomputes the new ADS root from ``P_w`` and ``pi_w``; and
4. flushes ``P_w`` to storage (see :mod:`repro.core.ci`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.crypto.hashing import Digest
from repro.errors import StorageError
from repro.merkle.ads import V2fsAds
from repro.sgx.enclave import Enclave
from repro.vfs.interface import PAGE_SIZE, VirtualFile, VirtualFilesystem

PageKey = Tuple[str, int]


@dataclass
class FileMeta:
    """Claimed (OCall-provided) and evolving metadata for one open file."""

    existed: bool
    old_size: int
    old_page_count: int
    size: int  # running high-water mark as writes land


class MaintenanceSession(VirtualFilesystem):
    """The enclave-resident V2FS interface for one block update."""

    def __init__(
        self,
        enclave: Enclave,
        ads_root: Digest,
        use_read_collection: bool = True,
    ) -> None:
        self.enclave = enclave
        self.ads_root = ads_root
        #: Ablation knob: with False, P_r still records read pages (they
        #: must be authenticated in finalize) but never *serves* them, so
        #: every re-read crosses the enclave boundary again — the
        #: configuration the paper's P_r design exists to avoid.
        self.use_read_collection = use_read_collection
        self.pages_read: Dict[PageKey, bytes] = {}   # P_r
        self.pages_written: Dict[PageKey, bytes] = {}  # P_w
        self.metas: Dict[str, FileMeta] = {}
        #: Total page fetches requested by the engine — what the OCall
        #: count would be with no in-enclave page collections at all.
        self.page_accesses = 0

    # ------------------------------------------------------------------
    # VirtualFilesystem interface
    # ------------------------------------------------------------------

    def open(self, path: str, create: bool = False) -> "MaintenanceFile":
        meta = self._meta(path)
        if not meta.existed and meta.size == 0 and not create:
            raise StorageError(f"{path} does not exist")
        return MaintenanceFile(self, path)

    def exists(self, path: str) -> bool:
        meta = self._meta(path)
        return meta.existed or meta.size > 0

    def remove(self, path: str) -> None:
        raise StorageError(
            "the authenticated storage layer is append-only; "
            "files cannot be removed during maintenance"
        )

    def list_files(self) -> List[str]:
        raise StorageError(
            "directory listing is not part of the V2FS interface"
        )

    # ------------------------------------------------------------------
    # Page access (Algorithm 2)
    # ------------------------------------------------------------------

    def _meta(self, path: str) -> FileMeta:
        meta = self.metas.get(path)
        if meta is None:
            exists, size, page_count = self.enclave.ocall("open", path)
            meta = FileMeta(
                existed=bool(exists),
                old_size=size if exists else 0,
                old_page_count=page_count if exists else 0,
                size=size if exists else 0,
            )
            self.metas[path] = meta
        return meta

    def get_page(self, path: str, page_id: int) -> bytes:
        """Fetch one page through P_w, P_r, or an OCall (Alg. 2 read)."""
        self.page_accesses += 1
        key = (path, page_id)
        page = self.pages_written.get(key)
        if page is not None:
            return page
        if self.use_read_collection:
            page = self.pages_read.get(key)
            if page is not None:
                return page
        meta = self._meta(path)
        if not meta.existed or page_id >= meta.old_page_count:
            # Reading a hole (never-written page): all zeros, no OCall.
            return b"\x00" * PAGE_SIZE
        page = self.enclave.ocall(
            "get_page", self.ads_root, path, page_id
        )
        if len(page) != PAGE_SIZE:
            raise StorageError("storage returned a malformed page")
        self.pages_read[key] = page
        return page

    def put_page(self, path: str, page_id: int, page: bytes) -> None:
        if len(page) != PAGE_SIZE:
            raise StorageError("pages must be exactly PAGE_SIZE bytes")
        self.pages_written[(path, page_id)] = page

    # ------------------------------------------------------------------
    # Finalize-phase helpers (Algorithm 3 inputs)
    # ------------------------------------------------------------------

    def read_page_keys(self) -> List[PageKey]:
        """Pages that must be authenticated by ``pi_r``.

        Only pages fetched from pre-existing storage need proof; pages
        the enclave wrote first are self-generated.
        """
        return sorted(self.pages_read)

    def written_by_file(self) -> Dict[str, Dict[int, bytes]]:
        writes: Dict[str, Dict[int, bytes]] = {}
        for (path, page_id), page in self.pages_written.items():
            writes.setdefault(path, {})[page_id] = page
        return writes

    def new_meta(self) -> Dict[str, Tuple[int, int]]:
        """``path -> (new_size, new_page_count)`` for every written file."""
        result: Dict[str, Tuple[int, int]] = {}
        for path, pages in self.written_by_file().items():
            meta = self.metas[path]
            new_count = max(meta.old_page_count, max(pages) + 1)
            result[path] = (meta.size, new_count)
        return result


class MaintenanceFile(VirtualFile):
    """File handle translating byte I/O into P_r/P_w page operations."""

    def __init__(self, session: MaintenanceSession, path: str) -> None:
        super().__init__(path)
        self._session = session

    def size(self) -> int:
        self._check_open()
        return self._session._meta(self.path).size

    def read(self, count: int) -> bytes:
        self._check_open()
        meta = self._session._meta(self.path)
        available = max(0, meta.size - self.offset)
        count = min(count, available)
        out = bytearray()
        while count > 0:
            page_id = self.offset // PAGE_SIZE
            within = self.offset % PAGE_SIZE
            take = min(count, PAGE_SIZE - within)
            page = self._session.get_page(self.path, page_id)
            out += page[within:within + take]
            self.offset += take
            count -= take
        return bytes(out)

    def write(self, data: bytes) -> int:
        self._check_open()
        session = self._session
        meta = session._meta(self.path)
        remaining = memoryview(data)
        while remaining:
            page_id = self.offset // PAGE_SIZE
            within = self.offset % PAGE_SIZE
            take = min(len(remaining), PAGE_SIZE - within)
            if within == 0 and take == PAGE_SIZE:
                # Full-page write: no need to fetch the old content
                # (Algorithm 2, line 28).
                page = bytes(remaining[:take])
            else:
                base = bytearray(session.get_page(self.path, page_id))
                base[within:within + take] = remaining[:take]
                page = bytes(base)
            session.put_page(self.path, page_id, page)
            self.offset += take
            meta.size = max(meta.size, self.offset)
            remaining = remaining[take:]
        return len(data)

    def close(self) -> None:
        # File descriptors are pooled for the duration of a maintenance
        # run: the session keeps each file's claimed metadata, so closing
        # a handle needs no boundary crossing (a fresh `open` of the same
        # path reuses the cached descriptor).  The pool is released in
        # one OCall when the run finalizes.
        self.closed = True


def register_storage_ocalls(
    enclave: Enclave, ads: V2fsAds, root_of: Callable[[], Digest]
) -> None:
    """Register the untrusted storage-layer OCall handlers on an enclave.

    ``root_of`` is a zero-argument callable returning the storage layer's
    current ADS root — the root can move between maintenance runs while
    the enclave object persists.
    """

    def handle_open(path: str):
        root = root_of()
        if ads.file_exists(root, path):
            node = ads.file_node(root, path)
            return True, node.size, node.page_count
        return False, 0, 0

    def handle_get_page(root: Digest, path: str, page_id: int) -> bytes:
        return ads.get_page(root, path, page_id)

    def handle_close(path: str) -> None:
        return None

    enclave.register_ocall("open", handle_open)
    enclave.register_ocall("get_page", handle_get_page)
    enclave.register_ocall("close", handle_close)
